package qcache

import (
	"bytes"
	"math/rand"
	"sync"
	"testing"

	"haindex/internal/bitvec"
	"haindex/internal/obs"
)

func code64(rng *rand.Rand) bitvec.Code {
	return bitvec.Rand(rng, 64)
}

// TestGetPut: basic hit/miss/counter behaviour, including the cacheability
// of an empty (no-match) answer and epoch keying.
func TestGetPut(t *testing.T) {
	reg := obs.NewRegistry()
	c := New(Options{MaxEntries: 64, Obs: reg})
	rng := rand.New(rand.NewSource(1))
	q := code64(rng)
	k := Key{Code: q, H: 3, Engine: 1, Shard: -1, Epoch: 7}
	var kb []byte

	kb = k.Append(kb[:0])
	if _, ok := c.Get(kb); ok {
		t.Fatal("hit on empty cache")
	}
	c.Put(kb, []int{5, 9})
	ids, ok := c.Get(kb)
	if !ok || len(ids) != 2 || ids[0] != 5 {
		t.Fatalf("after Put: ids=%v ok=%v", ids, ok)
	}
	// A no-match answer is a first-class entry.
	kEmpty := Key{Code: q, H: 0, Shard: -1, Epoch: 7}
	kb = kEmpty.Append(kb[:0])
	c.Put(kb, nil)
	ids, ok = c.Get(kb)
	if !ok || ids != nil {
		t.Fatalf("empty result not cached: ids=%v ok=%v", ids, ok)
	}
	// A new epoch is a different key: the stale entry is unreachable.
	k2 := k
	k2.Epoch = 8
	if _, ok = c.Get(k2.Append(kb[:0])); ok {
		t.Fatal("entry survived an epoch bump")
	}
	if h := reg.Counter("qcache.hits").Value(); h != 2 {
		t.Fatalf("hits = %d, want 2", h)
	}
	if m := reg.Counter("qcache.misses").Value(); m != 2 {
		t.Fatalf("misses = %d, want 2", m)
	}
	if n := reg.Gauge("qcache.entries").Value(); n != int64(c.Len()) || n != 2 {
		t.Fatalf("entries gauge %d, Len %d, want 2", n, c.Len())
	}
}

// TestBounded: the cache never exceeds MaxEntries no matter how many
// distinct keys are pushed through it.
func TestBounded(t *testing.T) {
	reg := obs.NewRegistry()
	c := New(Options{MaxEntries: 128, Shards: 4, Obs: reg})
	rng := rand.New(rand.NewSource(2))
	var kb []byte
	for i := 0; i < 5000; i++ {
		k := Key{Code: code64(rng), H: i % 8, Shard: -1}
		// Repeat each key a few times so the sketch lets some in.
		kb = k.Append(kb[:0])
		for rep := 0; rep < 3; rep++ {
			c.Get(kb)
			c.Put(kb, []int{i})
		}
	}
	if n := c.Len(); n > 128 {
		t.Fatalf("cache grew to %d entries, bound is 128", n)
	}
	if ev, by := reg.Counter("qcache.evictions").Value(), reg.Counter("qcache.bypass").Value(); ev+by == 0 {
		t.Fatal("overflow produced neither evictions nor bypasses")
	}
}

// TestAdmissionKeepsHotSet: after the cache is warmed with a hot set that
// is accessed repeatedly, a storm of one-hit wonders must not wash it out —
// the TinyLFU sketch denies them admission over the hot entries.
func TestAdmissionKeepsHotSet(t *testing.T) {
	c := New(Options{MaxEntries: 64, Shards: 1})
	rng := rand.New(rand.NewSource(3))
	hot := make([][]byte, 32)
	for i := range hot {
		hot[i] = Key{Code: code64(rng), H: 4, Shard: -1}.Append(nil)
	}
	// Warm: each hot key is looked up and filled several times.
	for round := 0; round < 8; round++ {
		for i, kb := range hot {
			if _, ok := c.Get(kb); !ok {
				c.Put(kb, []int{i})
			}
		}
	}
	// Storm: 2000 keys seen exactly once each, with the hot set still being
	// read (that is what makes it hot) — its sketch frequencies must keep
	// the one-hit wonders from being admitted over it.
	var kb []byte
	for i := 0; i < 2000; i++ {
		k := Key{Code: code64(rng), H: 5, Shard: -1}
		kb = k.Append(kb[:0])
		c.Get(kb)
		c.Put(kb, []int{i})
		c.Get(hot[i%len(hot)])
	}
	kept := 0
	for _, kb := range hot {
		if _, ok := c.Get(kb); ok {
			kept++
		}
	}
	if kept < len(hot)*3/4 {
		t.Fatalf("one-hit-wonder storm evicted the hot set: %d/%d kept", kept, len(hot))
	}
}

// TestMaxIDsBypass: oversized results never enter the cache.
func TestMaxIDsBypass(t *testing.T) {
	reg := obs.NewRegistry()
	c := New(Options{MaxEntries: 16, MaxIDs: 4, Obs: reg})
	rng := rand.New(rand.NewSource(4))
	kb := Key{Code: code64(rng), H: 3, Shard: -1}.Append(nil)
	c.Put(kb, []int{1, 2, 3, 4, 5})
	if _, ok := c.Get(kb); ok {
		t.Fatal("oversized result was cached")
	}
	if reg.Counter("qcache.bypass").Value() == 0 {
		t.Fatal("bypass not counted")
	}
}

// TestConcurrent hammers one cache from many goroutines under -race. The
// keys are shared across goroutines and fills happen even on hits, so
// Put's concurrent-fill overwrite of an entry's slice races against Get on
// the same entry — the data race Get avoids by copying the slice header
// under the shard lock.
func TestConcurrent(t *testing.T) {
	c := New(Options{MaxEntries: 256})
	seed := rand.New(rand.NewSource(42))
	keys := make([][]byte, 64)
	for i := range keys {
		keys[i] = Key{Code: code64(seed), H: i % 6, Shard: -1}.Append(nil)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < 3000; i++ {
				kb := keys[rng.Intn(len(keys))]
				ids, ok := c.Get(kb)
				if !ok || i%7 == 0 {
					// Refill on some hits too: the concurrent-fill path
					// replaces the entry's slice with one of a different
					// length while other goroutines read it.
					fill := make([]int, rng.Intn(8))
					for j := range fill {
						fill[j] = j
					}
					c.Put(kb, fill)
				}
				for j := range ids {
					if ids[j] != j {
						t.Errorf("torn read: ids[%d] = %d", j, ids[j])
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestKeyInjective is the key-packing property test: distinct key tuples
// pack to distinct bytes, equal tuples to equal bytes.
func TestKeyInjective(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	keys := make([]Key, 0, 400)
	for i := 0; i < 100; i++ {
		base := Key{Code: code64(rng), H: rng.Intn(65), Engine: rng.Intn(4),
			Shard: rng.Intn(5) - 1, Epoch: rng.Uint64() % 1000}
		keys = append(keys, base)
		alt := base
		alt.Epoch++
		keys = append(keys, alt)
		alt = base
		alt.Shard++
		keys = append(keys, alt)
		alt = base
		alt.H++
		keys = append(keys, alt)
	}
	seen := make(map[string]Key, len(keys))
	for _, k := range keys {
		b := string(k.Append(nil))
		if prev, dup := seen[b]; dup && !sameKey(prev, k) {
			t.Fatalf("distinct keys packed identically:\n%+v\n%+v", prev, k)
		}
		seen[b] = k
		if !bytes.Equal(k.Append(nil), []byte(b)) {
			t.Fatal("packing is not deterministic")
		}
	}
}

func sameKey(a, b Key) bool {
	return a.H == b.H && a.Engine == b.Engine && a.Shard == b.Shard &&
		a.Epoch == b.Epoch && a.Code.Equal(b.Code)
}

// FuzzKeyPacking drives the injectivity property from fuzzed field values:
// two keys derived from the input pack equal iff their fields are equal.
func FuzzKeyPacking(f *testing.F) {
	f.Add(uint64(1), uint64(2), 3, 1, 0, uint64(9), uint64(9))
	f.Add(uint64(0), uint64(0), 0, 0, -1, uint64(0), uint64(1))
	f.Fuzz(func(t *testing.T, w1, w2 uint64, h, engine, shard int, e1, e2 uint64) {
		if h < 0 || h > 1<<20 || engine < 0 || engine > 1<<20 || shard < -1 || shard > 1<<20 {
			t.Skip()
		}
		a := Key{Code: bitvec.FromUint64(w1, 64), H: h, Engine: engine, Shard: shard, Epoch: e1}
		b := Key{Code: bitvec.FromUint64(w2, 64), H: h, Engine: engine, Shard: shard, Epoch: e2}
		pa, pb := a.Append(nil), b.Append(nil)
		if sameKey(a, b) != bytes.Equal(pa, pb) {
			t.Fatalf("packing not injective: %+v vs %+v", a, b)
		}
	})
}

// BenchmarkGetHit measures the steady-state hit path (and its allocs).
func BenchmarkGetHit(b *testing.B) {
	c := New(Options{MaxEntries: 1024})
	rng := rand.New(rand.NewSource(6))
	k := Key{Code: code64(rng), H: 4, Shard: -1}
	kb := k.Append(nil)
	c.Put(kb, []int{1, 2, 3})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		kb = k.Append(kb[:0])
		if _, ok := c.Get(kb); !ok {
			b.Fatal("miss")
		}
	}
}

// TestWarmth: the snapshot mirrors the cache's own counters, and Hash is a
// stable function of the packed bytes only.
func TestWarmth(t *testing.T) {
	c := New(Options{MaxEntries: 64})
	rng := rand.New(rand.NewSource(9))
	k := Key{Code: code64(rng), H: 2, Shard: -1}
	kb := k.Append(nil)
	c.Get(kb) // miss
	c.Put(kb, []int{1})
	c.Get(kb) // hit
	entries, hits, misses := c.Warmth()
	if entries != 1 || hits != 1 || misses != 1 {
		t.Fatalf("Warmth = (%d, %d, %d), want (1, 1, 1)", entries, hits, misses)
	}
	if Hash(kb) != Hash(append([]byte(nil), kb...)) {
		t.Fatal("Hash depends on slice identity, not bytes")
	}
	if Hash(kb) == Hash(kb[:len(kb)-1]) {
		t.Fatal("Hash ignored the final byte")
	}
}
