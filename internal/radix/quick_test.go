package radix

import (
	"math/rand"
	"testing"
	"testing/quick"

	"haindex/internal/bitvec"
)

// Property: the trie equals the oracle for arbitrary seeds, sizes, and
// thresholds.
func TestQuickOracleEquivalence(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(150)
		bits := 4 + rng.Intn(60)
		codes := make([]bitvec.Code, n)
		for i := range codes {
			codes[i] = bitvec.Rand(rng, bits)
		}
		tr := Build(codes, nil)
		q := bitvec.Rand(rng, bits)
		h := rng.Intn(bits)
		return equalIDs(tr.Search(q, h), oracle(codes, q, h))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: insert then delete restores the previous answer set.
func TestQuickInsertDeleteInverse(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(80)
		codes := make([]bitvec.Code, n)
		for i := range codes {
			codes[i] = bitvec.Rand(rng, 24)
		}
		tr := Build(codes, nil)
		q := bitvec.Rand(rng, 24)
		before := tr.Search(q, 3)
		extra := bitvec.Rand(rng, 24)
		tr.Insert(999, extra)
		if !tr.Delete(999, extra) {
			return false
		}
		return equalIDs(tr.Search(q, 3), before)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
