// Package radix implements the Radix-Tree (PATRICIA trie) approach of
// Section 4.2: binary codes are stored in a path-compressed binary trie, and
// a Hamming range query walks the trie top-down accumulating the distance
// between the query and each compressed edge label, pruning a whole subtree
// as soon as the accumulated prefix distance exceeds the threshold (the
// Hamming downward-closure property, Proposition 1, applied to prefixes).
//
// The structure is prefix-sensitive: codes differing in an early bit are
// split into distant branches even when their suffixes agree, which is the
// redundancy the HA-Index removes.
package radix

import (
	"fmt"

	"haindex/internal/bitvec"
)

// Tree is a Hamming-searchable PATRICIA trie over fixed-length binary codes.
type Tree struct {
	root   *node
	length int
	n      int
	// Stats counts work done by the most recent Search.
	Stats Stats
}

// Stats reports the per-query work of the trie search.
type Stats struct {
	NodesVisited int
	BitsCompared int
}

type node struct {
	// edge is the compressed label on the edge from the parent, expressed as
	// the absolute bit range [from, from+width) of the full code together
	// with the label bits (stored left-aligned in a width-bit code).
	from, width int
	edge        bitvec.Code
	children    [2]*node
	ids         []int // non-empty at leaves (depth == code length)
}

// New returns an empty tree over codes of the given bit length.
func New(length int) *Tree {
	if length <= 0 {
		panic(fmt.Sprintf("radix: invalid code length %d", length))
	}
	return &Tree{root: &node{}, length: length}
}

// Build returns a tree over the codes with their tuple ids (positions if ids
// is nil).
func Build(codes []bitvec.Code, ids []int) *Tree {
	if len(codes) == 0 {
		panic("radix: empty dataset")
	}
	t := New(codes[0].Len())
	for i, c := range codes {
		id := i
		if ids != nil {
			id = ids[i]
		}
		t.Insert(id, c)
	}
	return t
}

// Len returns the number of stored tuples.
func (t *Tree) Len() int { return t.n }

// Insert adds a tuple id under the code.
func (t *Tree) Insert(id int, c bitvec.Code) {
	if c.Len() != t.length {
		panic(fmt.Sprintf("radix: inserting %d-bit code into %d-bit tree", c.Len(), t.length))
	}
	t.n++
	cur := t.root
	depth := 0
	for depth < t.length {
		b := 0
		if c.Bit(depth) {
			b = 1
		}
		child := cur.children[b]
		if child == nil {
			// Attach the whole remaining suffix as one compressed edge.
			leaf := &node{from: depth, width: t.length - depth, edge: c.Segment(depth, t.length-depth), ids: []int{id}}
			cur.children[b] = leaf
			return
		}
		// Match against the child's edge label.
		m := matchLen(c, depth, child.edge)
		if m == child.width {
			cur = child
			depth += m
			continue
		}
		// Split the edge at the first mismatch.
		split := &node{from: child.from, width: m, edge: child.edge.Segment(0, m)}
		child.from += m
		child.edge = child.edge.Segment(m, child.width-m)
		child.width -= m
		cb := 0
		if child.edge.Bit(0) {
			cb = 1
		}
		split.children[cb] = child
		cur.children[b] = split
		cur = split
		depth += m
	}
	// depth == length: exact code already present at cur.
	cur.ids = append(cur.ids, id)
}

// matchLen returns how many leading bits of edge agree with c starting at
// absolute position from.
func matchLen(c bitvec.Code, from int, edge bitvec.Code) int {
	m := 0
	for m < edge.Len() && c.Bit(from+m) == edge.Bit(m) {
		m++
	}
	return m
}

// Delete removes one occurrence of id under the code. It reports whether the
// tuple was found. Structural merging of underfull nodes is not performed;
// empty leaves are detached.
func (t *Tree) Delete(id int, c bitvec.Code) bool {
	var walk func(n *node, depth int) (removed, empty bool)
	walk = func(n *node, depth int) (bool, bool) {
		if depth == t.length {
			for i, x := range n.ids {
				if x == id {
					n.ids = append(n.ids[:i], n.ids[i+1:]...)
					t.n--
					return true, len(n.ids) == 0
				}
			}
			return false, false
		}
		b := 0
		if c.Bit(depth) {
			b = 1
		}
		child := n.children[b]
		if child == nil || matchLen(c, depth, child.edge) != child.width {
			return false, false
		}
		removed, empty := walk(child, depth+child.width)
		if empty {
			n.children[b] = nil
		}
		return removed, n.children[0] == nil && n.children[1] == nil && len(n.ids) == 0
	}
	removed, _ := walk(t.root, 0)
	return removed
}

// Search returns the ids of all codes within Hamming distance h of q,
// pruning subtrees whose prefix distance already exceeds h.
func (t *Tree) Search(q bitvec.Code, h int) []int {
	if q.Len() != t.length {
		panic(fmt.Sprintf("radix: searching %d-bit query in %d-bit tree", q.Len(), t.length))
	}
	t.Stats = Stats{}
	var out []int
	var walk func(n *node, depth, dist int)
	walk = func(n *node, depth, dist int) {
		t.Stats.NodesVisited++
		if depth == t.length {
			out = append(out, n.ids...)
			return
		}
		for b := 0; b < 2; b++ {
			child := n.children[b]
			if child == nil {
				continue
			}
			d := dist + t.edgeDistance(q, child)
			if d <= h {
				walk(child, depth+child.width, d)
			}
		}
	}
	walk(t.root, 0, 0)
	return out
}

// edgeDistance counts differing bits between the query and the child's edge
// label over the edge's absolute bit range.
func (t *Tree) edgeDistance(q bitvec.Code, n *node) int {
	d := 0
	for i := 0; i < n.width; i++ {
		t.Stats.BitsCompared++
		if q.Bit(n.from+i) != n.edge.Bit(i) {
			d++
		}
	}
	return d
}

// SizeBytes returns the approximate in-memory footprint of the trie.
func (t *Tree) SizeBytes() int {
	sz := 0
	var walk func(n *node)
	walk = func(n *node) {
		sz += 48 + n.edge.SizeBytes() + 8*len(n.ids)
		for _, c := range n.children {
			if c != nil {
				walk(c)
			}
		}
	}
	walk(t.root)
	return sz
}
