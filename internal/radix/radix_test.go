package radix

import (
	"math/rand"
	"sort"
	"testing"

	"haindex/internal/bitvec"
)

func oracle(codes []bitvec.Code, q bitvec.Code, h int) []int {
	var out []int
	for i, c := range codes {
		if q.Distance(c) <= h {
			out = append(out, i)
		}
	}
	return out
}

func equalIDs(a, b []int) bool {
	sort.Ints(a)
	sort.Ints(b)
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestPaperExample(t *testing.T) {
	// Table 2a + Example 1: query "101100010", h=3 selects {t0,t3,t4,t6}.
	codes := []bitvec.Code{
		bitvec.MustFromString("001001010"),
		bitvec.MustFromString("001011101"),
		bitvec.MustFromString("011001100"),
		bitvec.MustFromString("101001010"),
		bitvec.MustFromString("101110110"),
		bitvec.MustFromString("101011101"),
		bitvec.MustFromString("101101010"),
		bitvec.MustFromString("111001100"),
	}
	tr := Build(codes, nil)
	got := tr.Search(bitvec.MustFromString("101100010"), 3)
	if !equalIDs(got, []int{0, 3, 4, 6}) {
		t.Errorf("paper example: got %v want [0 3 4 6]", got)
	}
}

func TestAgainstOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for trial := 0; trial < 8; trial++ {
		n := 1 + rng.Intn(300)
		bitsLen := []int{8, 16, 32, 64, 100}[trial%5]
		codes := make([]bitvec.Code, n)
		for i := range codes {
			codes[i] = bitvec.Rand(rng, bitsLen)
		}
		tr := Build(codes, nil)
		if tr.Len() != n {
			t.Fatalf("Len = %d want %d", tr.Len(), n)
		}
		for q := 0; q < 25; q++ {
			query := codes[rng.Intn(n)].Clone()
			for f := 0; f < rng.Intn(5); f++ {
				query.FlipBit(rng.Intn(bitsLen))
			}
			h := rng.Intn(6)
			if !equalIDs(tr.Search(query, h), oracle(codes, query, h)) {
				t.Fatalf("trial %d mismatch", trial)
			}
		}
	}
}

func TestDuplicateCodes(t *testing.T) {
	c := bitvec.MustFromString("1010")
	tr := New(4)
	tr.Insert(1, c)
	tr.Insert(2, c)
	tr.Insert(3, bitvec.MustFromString("0101"))
	got := tr.Search(c, 0)
	if !equalIDs(got, []int{1, 2}) {
		t.Errorf("got %v", got)
	}
	if tr.Len() != 3 {
		t.Errorf("len = %d", tr.Len())
	}
}

func TestDelete(t *testing.T) {
	rng := rand.New(rand.NewSource(62))
	codes := make([]bitvec.Code, 100)
	for i := range codes {
		codes[i] = bitvec.Rand(rng, 24)
	}
	tr := Build(codes, nil)
	for i := 0; i < 50; i++ {
		if !tr.Delete(i, codes[i]) {
			t.Fatalf("delete %d failed", i)
		}
	}
	if tr.Len() != 50 {
		t.Fatalf("len = %d", tr.Len())
	}
	// Remaining half still searchable and deleted half gone.
	for i := 0; i < 100; i++ {
		got := tr.Search(codes[i], 0)
		found := false
		for _, id := range got {
			if id == i {
				found = true
			}
		}
		if i < 50 && found {
			t.Fatalf("deleted %d still present", i)
		}
		if i >= 50 && !found {
			t.Fatalf("surviving %d missing", i)
		}
	}
	if tr.Delete(7, codes[7]) {
		t.Fatal("double delete succeeded")
	}
	if tr.Delete(51, bitvec.Rand(rng, 24)) {
		t.Fatal("deleting absent code succeeded")
	}
}

// TestPrefixPruning verifies the Radix-Tree's selling point: when no code
// shares a prefix with the query within the budget, the search touches few
// nodes.
func TestPrefixPruning(t *testing.T) {
	// All codes start with 1111; query starts 0000 with h=2 → everything
	// pruned at the top.
	var codes []bitvec.Code
	rng := rand.New(rand.NewSource(63))
	for i := 0; i < 200; i++ {
		c := bitvec.Rand(rng, 32)
		for j := 0; j < 4; j++ {
			c.SetBit(j, true)
		}
		codes = append(codes, c)
	}
	tr := Build(codes, nil)
	q := bitvec.New(32) // all zeros
	got := tr.Search(q, 2)
	if len(got) != 0 {
		t.Fatalf("got %d results", len(got))
	}
	if tr.Stats.NodesVisited > 10 {
		t.Errorf("pruning ineffective: visited %d nodes", tr.Stats.NodesVisited)
	}
}

func TestInsertSplitsEdges(t *testing.T) {
	tr := New(8)
	tr.Insert(0, bitvec.MustFromString("11110000"))
	tr.Insert(1, bitvec.MustFromString("11111111"))
	tr.Insert(2, bitvec.MustFromString("11000000"))
	for i, s := range []string{"11110000", "11111111", "11000000"} {
		got := tr.Search(bitvec.MustFromString(s), 0)
		if !equalIDs(got, []int{i}) {
			t.Fatalf("exact search %s = %v", s, got)
		}
	}
	if got := tr.Search(bitvec.MustFromString("11110000"), 4); !equalIDs(got, []int{0, 1, 2}) {
		t.Fatalf("h=4 got %v", got)
	}
}

func TestSizeBytes(t *testing.T) {
	rng := rand.New(rand.NewSource(64))
	codes := make([]bitvec.Code, 50)
	for i := range codes {
		codes[i] = bitvec.Rand(rng, 32)
	}
	tr := Build(codes, nil)
	if tr.SizeBytes() <= 0 {
		t.Fatal("size must be positive")
	}
}
