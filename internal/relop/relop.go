// Package relop implements Hamming-distance-aware relational operators —
// the direction the paper's concluding remarks point to (Section 7, citing
// the similarity-aware relational intersect operator of Marri et al.,
// SISAP'14). All operators take an HA-Index (or any Hamming searcher) over
// one side and stream the other side through it, so their cost profile is
// the Hamming-select's rather than a quadratic scan's.
//
// Semantics over datasets R and S with threshold h:
//
//   - SemiJoin:   tuples of R with at least one S tuple within h
//     (similarity EXISTS — the probe side of the intersect operator).
//   - AntiJoin:   tuples of R with no S tuple within h (similarity NOT
//     EXISTS — similarity set difference).
//   - Intersect:  distinct R codes that also appear in S within h, paired
//     with their witnesses' counts (the similarity-aware intersection).
//   - Subsumes:   whether every S tuple has an R tuple within h
//     (similarity division / containment check).
package relop

import (
	"haindex/internal/bitvec"
)

// Searcher is the Hamming range-query contract the operators run on.
type Searcher interface {
	Search(q bitvec.Code, h int) []int
}

// SemiJoin returns the indexes i of probe[i] that have at least one indexed
// tuple within Hamming distance h.
func SemiJoin(idx Searcher, probe []bitvec.Code, h int) []int {
	var out []int
	for i, c := range probe {
		if len(idx.Search(c, h)) > 0 {
			out = append(out, i)
		}
	}
	return out
}

// AntiJoin returns the indexes i of probe[i] that have no indexed tuple
// within Hamming distance h.
func AntiJoin(idx Searcher, probe []bitvec.Code, h int) []int {
	var out []int
	for i, c := range probe {
		if len(idx.Search(c, h)) == 0 {
			out = append(out, i)
		}
	}
	return out
}

// IntersectRow is one result of the similarity intersection: a probe-side
// code together with how many indexed tuples witness it.
type IntersectRow struct {
	Code      bitvec.Code
	ProbeIDs  []int // probe positions sharing this code
	Witnesses int   // indexed tuples within h
}

// Intersect computes the similarity-aware intersection: the distinct probe
// codes having at least one indexed tuple within Hamming distance h. Rows
// are returned in first-appearance order of the code in probe.
func Intersect(idx Searcher, probe []bitvec.Code, h int) []IntersectRow {
	byCode := make(map[string]int)
	var rows []IntersectRow
	for i, c := range probe {
		key := c.Key()
		if at, seen := byCode[key]; seen {
			if at >= 0 {
				rows[at].ProbeIDs = append(rows[at].ProbeIDs, i)
			}
			continue
		}
		w := len(idx.Search(c, h))
		if w == 0 {
			byCode[key] = -1
			continue
		}
		byCode[key] = len(rows)
		rows = append(rows, IntersectRow{Code: c, ProbeIDs: []int{i}, Witnesses: w})
	}
	return rows
}

// Subsumes reports whether every probe tuple has an indexed tuple within
// Hamming distance h — the similarity containment check.
func Subsumes(idx Searcher, probe []bitvec.Code, h int) bool {
	for _, c := range probe {
		if len(idx.Search(c, h)) == 0 {
			return false
		}
	}
	return true
}
