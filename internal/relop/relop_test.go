package relop

import (
	"math/rand"
	"testing"

	"haindex/internal/baseline"
	"haindex/internal/bitvec"
	"haindex/internal/core"
)

func randomCodes(rng *rand.Rand, n, bits int) []bitvec.Code {
	out := make([]bitvec.Code, n)
	for i := range out {
		out[i] = bitvec.Rand(rng, bits)
	}
	return out
}

func oracleHas(indexed []bitvec.Code, q bitvec.Code, h int) bool {
	for _, c := range indexed {
		if q.Distance(c) <= h {
			return true
		}
	}
	return false
}

func TestSemiAntiPartition(t *testing.T) {
	rng := rand.New(rand.NewSource(161))
	indexed := randomCodes(rng, 200, 24)
	probe := randomCodes(rng, 150, 24)
	// Guarantee some matches.
	for i := 0; i < 30; i++ {
		c := indexed[rng.Intn(len(indexed))].Clone()
		c.FlipBit(rng.Intn(24))
		probe = append(probe, c)
	}
	idx := core.BuildDynamic(indexed, nil, core.Options{})
	h := 3
	semi := SemiJoin(idx, probe, h)
	anti := AntiJoin(idx, probe, h)
	if len(semi)+len(anti) != len(probe) {
		t.Fatalf("semi %d + anti %d != probe %d", len(semi), len(anti), len(probe))
	}
	inSemi := map[int]bool{}
	for _, i := range semi {
		inSemi[i] = true
	}
	for i, c := range probe {
		want := oracleHas(indexed, c, h)
		if inSemi[i] != want {
			t.Fatalf("probe %d semi=%v want %v", i, inSemi[i], want)
		}
	}
	if len(semi) < 30 {
		t.Fatalf("expected at least the planted matches, got %d", len(semi))
	}
}

func TestSemiJoinWorksOnAnySearcher(t *testing.T) {
	rng := rand.New(rand.NewSource(162))
	indexed := randomCodes(rng, 100, 32)
	probe := indexed[:20]
	nl := baseline.NewNestedLoop(indexed, nil)
	got := SemiJoin(nl, probe, 0)
	if len(got) != 20 {
		t.Fatalf("self semi-join should match everything: %d", len(got))
	}
}

func TestIntersect(t *testing.T) {
	rng := rand.New(rand.NewSource(163))
	indexed := randomCodes(rng, 100, 20)
	// Probe with duplicates: the intersection is over distinct codes.
	dup := indexed[7]
	probe := []bitvec.Code{dup, bitvec.Rand(rng, 20), dup, indexed[9]}
	idx := core.BuildDynamic(indexed, nil, core.Options{})
	rows := Intersect(idx, probe, 0)
	var dupRow *IntersectRow
	for i := range rows {
		if rows[i].Code.Equal(dup) {
			dupRow = &rows[i]
		}
	}
	if dupRow == nil {
		t.Fatal("duplicate code missing from intersection")
	}
	if len(dupRow.ProbeIDs) != 2 || dupRow.ProbeIDs[0] != 0 || dupRow.ProbeIDs[1] != 2 {
		t.Fatalf("probe ids = %v", dupRow.ProbeIDs)
	}
	if dupRow.Witnesses < 1 {
		t.Fatal("no witnesses")
	}
	// Distinctness: no code appears twice.
	seen := map[string]bool{}
	for _, r := range rows {
		if seen[r.Code.Key()] {
			t.Fatal("code repeated in intersection")
		}
		seen[r.Code.Key()] = true
	}
}

func TestIntersectNegativeCached(t *testing.T) {
	rng := rand.New(rand.NewSource(164))
	indexed := randomCodes(rng, 50, 20)
	miss := bitvec.Rand(rng, 20)
	probe := []bitvec.Code{miss, miss, miss}
	idx := core.BuildDynamic(indexed, nil, core.Options{})
	if rows := Intersect(idx, probe, 0); len(rows) != 0 {
		t.Fatalf("unexpected rows: %d", len(rows))
	}
}

func TestSubsumes(t *testing.T) {
	rng := rand.New(rand.NewSource(165))
	indexed := randomCodes(rng, 120, 24)
	idx := core.BuildDynamic(indexed, nil, core.Options{})
	if !Subsumes(idx, indexed[:40], 0) {
		t.Fatal("a dataset must subsume its own subset")
	}
	probe := append([]bitvec.Code{}, indexed[:10]...)
	far := bitvec.New(24)
	for i := 0; i < 24; i++ {
		far.SetBit(i, !indexed[0].Bit(i))
	}
	// far is distance 24 from indexed[0] but may be close to others; force
	// certainty by checking the oracle first.
	if !oracleHas(indexed, far, 2) {
		probe = append(probe, far)
		if Subsumes(idx, probe, 2) {
			t.Fatal("subsumption should fail with an uncovered probe")
		}
	}
}
