package server

import (
	"encoding/json"
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// StartDebug binds an HTTP debug listener on addr (e.g. "127.0.0.1:0") and
// serves the shard's observability surface in the background:
//
//	/debug/obs     — the metric registry snapshot (counters, gauges,
//	                 latency/cost histograms with p50/p95/p99) as JSON
//	/debug/traces  — the ring of recent request span trees, plus the
//	                 slowest request seen, as JSON
//	/debug/vars    — expvar (cmdline, memstats)
//	/debug/pprof/  — net/http/pprof profiles
//
// The endpoint is for operators and tests, not for untrusted networks: bind
// it to loopback. It stops when the server is Closed. Returns the bound
// address.
func (s *Server) StartDebug(addr string) (net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ln.Close()
		return nil, fmt.Errorf("server: already closed")
	}
	if s.debugLn != nil {
		s.mu.Unlock()
		ln.Close()
		return nil, fmt.Errorf("server: debug endpoint already started")
	}
	s.debugLn = ln
	s.mu.Unlock()

	mux := http.NewServeMux()
	mux.HandleFunc("/debug/obs", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.Write(s.reg.Snapshot().JSON())
	})
	mux.HandleFunc("/debug/traces", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		out := map[string]interface{}{
			"total":   s.tracer.Total(),
			"slowest": s.tracer.Slowest(),
			"recent":  s.tracer.Traces(),
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(out)
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	srv := &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		srv.Serve(ln) // returns once Close closes the listener
	}()
	return ln.Addr(), nil
}
