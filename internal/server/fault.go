package server

import "time"

// Fault is what happens to one search/top-k request: an added latency (a
// straggling shard), an error response, or a dropped connection. The delay,
// if any, is served first — a delayed request is what a hedging client
// races.
type Fault struct {
	Fail  bool
	Drop  bool
	Shed  bool
	Delay time.Duration
}

// FaultPlan is the serving-layer counterpart of the MapReduce runtime's
// deterministic fault injection: it maps the server-wide request sequence
// number (0-based, counting only search and top-k requests) to injected
// faults, so every failure a test provokes is reproducible. A nil plan
// injects nothing. Build the plan before the server starts; it is read
// concurrently while serving and must not be mutated afterwards.
type FaultPlan struct {
	entries map[int64]Fault
}

// NewFaultPlan returns an empty plan.
func NewFaultPlan() *FaultPlan {
	return &FaultPlan{entries: make(map[int64]Fault)}
}

func (p *FaultPlan) upsert(req int64, fn func(*Fault)) *FaultPlan {
	f := p.entries[req]
	fn(&f)
	p.entries[req] = f
	return p
}

// FailRequest schedules request req to be answered with an error frame.
func (p *FaultPlan) FailRequest(req int64) *FaultPlan {
	return p.upsert(req, func(f *Fault) { f.Fail = true })
}

// DropRequest schedules the connection serving request req to be closed
// without a response — the failure mode that exercises client reconnects.
func (p *FaultPlan) DropRequest(req int64) *FaultPlan {
	return p.upsert(req, func(f *Fault) { f.Drop = true })
}

// ShedRequest schedules request req to be answered with a MsgShed frame as
// if its admission-wait budget had expired — the deterministic overload
// signal smoke tests assert on. Ignored on sessions older than protocol
// version 5, which cannot parse the frame.
func (p *FaultPlan) ShedRequest(req int64) *FaultPlan {
	return p.upsert(req, func(f *Fault) { f.Shed = true })
}

// DelayRequest schedules request req to stall for d before being served —
// the straggler injection hedged requests exist to absorb.
func (p *FaultPlan) DelayRequest(req int64, d time.Duration) *FaultPlan {
	return p.upsert(req, func(f *Fault) { f.Delay = d })
}

// fault resolves the injected fault for one request; nil-receiver safe.
func (p *FaultPlan) fault(req int64) Fault {
	if p == nil {
		return Fault{}
	}
	return p.entries[req]
}
