// Package server hosts one shard of an HA-Index behind the wire protocol:
// it loads a partition snapshot (internal/wire), answers batched
// Hamming-select and top-k requests through a pool of core.Searchers with
// batched admission, and keeps per-shard statistics. One process serves one
// Gray partition; a deployment runs one or more replicas of each partition
// and a client router (internal/client) fans queries across them.
//
// A server built with NewMutable serves an lsm.Shard instead of a fixed
// index and additionally answers the protocol-v3 mutation frames
// (insert/delete/seal); mutations are applied synchronously, so an
// acknowledged write is visible to every subsequent search.
package server

import (
	"bufio"
	"fmt"
	"net"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"haindex/internal/bitvec"
	"haindex/internal/core"
	"haindex/internal/lsm"
	"haindex/internal/mih"
	"haindex/internal/obs"
	"haindex/internal/planner"
	"haindex/internal/qcache"
	"haindex/internal/wire"
)

// Options configures a shard server.
type Options struct {
	// Searchers is the size of the searcher pool — the maximum number of
	// concurrently executing queries across all connections. 0 selects
	// GOMAXPROCS.
	Searchers int
	// Faults optionally injects deterministic request-level faults (tests,
	// smoke runs). Nil injects nothing.
	Faults *FaultPlan

	// Mmap makes LoadSnapshotFile serve a version-4 snapshot zero-copy: the
	// embedded arena is aliased straight out of an mmap of the file, so the
	// shard is query-ready in milliseconds regardless of size and its slabs
	// stay in the page cache instead of the Go heap. Snapshots in any other
	// version (or on platforms without the mmap fast path) silently fall
	// back to the eager reader — same answers, eager cost. The server owns
	// the mapping and releases it on Close.
	Mmap bool

	// PointerWalk disables the default freeze-on-load: LoadSnapshotFile
	// normally compiles a pointer (v1) snapshot into a core.FrozenIndex
	// before serving, which is faster and smaller at query time. Set this to
	// serve the decoded pointer hierarchy as-is (the haserve -frozen=false
	// escape hatch). Frozen (v2) snapshots are already flat and ignore it.
	PointerWalk bool

	// Engine selects the access path for search requests on an immutable
	// server. "ha" (or empty) serves the loaded index directly and is the
	// only mode a mutable server accepts. Anything else builds the full
	// engine set (MIH, scan arrays, measured-cost planner) from the loaded
	// index at construction: "auto" routes each request through the planner,
	// "mih" and "scan" pin one engine. A per-request wire hint (protocol v4)
	// overrides the mode, but may only name engines this option enabled.
	Engine string

	// CacheEntries, when positive, puts a result cache (internal/qcache) in
	// front of batched admission: a search whose every query hits is
	// answered without consuming an admission ticket. Entries are keyed on
	// (code, threshold, access path, mutation version), so LSM mutations
	// invalidate by construction — see lsm.Shard.Version. 0 disables.
	CacheEntries int
	// ShedAfter, when positive, is the admission-wait budget: a search or
	// top-k request still waiting for an admission ticket past it is
	// answered with a polite MsgShed instead of queueing further. The
	// budget scales with the request's wire priority class (interactive
	// 2x, normal 1x, batch 1/2x). Sessions negotiated below protocol
	// version 5 cannot parse MsgShed and block as before. 0 disables.
	ShedAfter time.Duration

	// IdleTimeout bounds how long a connection may sit between frames (and
	// how long a half-written request may stall) before the server reaps it.
	// A stalled or half-open client otherwise pins its handler goroutine
	// forever. 0 selects 30s; negative disables the deadline.
	IdleTimeout time.Duration
	// WriteTimeout bounds writing one response frame to a client that has
	// stopped reading. 0 selects 30s; negative disables the deadline.
	WriteTimeout time.Duration

	// Obs, when set, is the registry the server hangs its counters and
	// latency histograms on; nil gives the server a private one (reachable
	// via Server.Obs).
	Obs *obs.Registry
	// TraceCapacity is the size of the per-server ring of request traces
	// kept for the debug endpoint. 0 selects 64.
	TraceCapacity int
}

// Stats is a snapshot of the per-shard serving counters.
type Stats = wire.StatsResp

// Server serves one shard. Create with New, start with Start (or Serve on
// an existing listener), stop with Close.
type Server struct {
	meta wire.SnapshotMeta
	idx  core.Index // nil in mutable mode
	opts Options

	// ownsIdx marks an index the server loaded itself (an mmap'd arena from
	// LoadSnapshotFile); Close releases its mapping.
	ownsIdx bool

	// shard, when non-nil, makes this a mutable server: searches go through
	// the LSM layering and the v3 mutation frames are accepted.
	shard *lsm.Shard

	// pool holds the idle per-engine searcher bundles; its capacity is the
	// admission limit. A mutable server has no fixed index to bind searchers
	// to (the shard pools its own per-segment searchers), so the channel
	// holds nil admission tickets instead.
	pool chan *searcherSet

	// Multi-engine serving state (immutable servers with Options.Engine other
	// than "ha"): the planner owns the cost model and the shared MIH engine;
	// fixedStrategy pins the decision for the "mih"/"scan" modes; scanCodes
	// and scanIDs drive the server's own concurrent brute-scan path.
	pl            *planner.Planner
	planned       bool // Engine == "auto": ask the planner per request
	fixedStrategy planner.Strategy
	scanCodes     []bitvec.Code
	scanIDs       []int

	// cache, when non-nil, answers repeated searches ahead of admission.
	cache *qcache.Cache

	// reqSeq numbers search/top-k requests across all connections — the
	// coordinate system of the fault plan.
	reqSeq atomic.Int64

	requests       atomic.Int64
	queries        atomic.Int64
	topkQueries    atomic.Int64
	idsReturned    atomic.Int64
	errors         atomic.Int64
	faultsInjected atomic.Int64
	distComps      atomic.Int64
	nodesVisited   atomic.Int64
	leavesChecked  atomic.Int64

	// Observability: the registry mirrors the counters above and adds the
	// per-message-type latency histograms; the tracer rings recent request
	// span trees. Hot-path instruments are resolved once here.
	reg           *obs.Registry
	tracer        *obs.Tracer
	reqCount      *obs.Counter
	errCount      *obs.Counter
	faultCount    *obs.Counter
	histSearch    *obs.Histogram // req.search_ns
	histTopK      *obs.Histogram // req.topk_ns
	histStats     *obs.Histogram // req.stats_ns
	histMutate    *obs.Histogram // req.mutate_ns
	histAdmission *obs.Histogram // admission_wait_ns
	histDist      *obs.Histogram // search.dist_comps
	histNodes     *obs.Histogram // search.nodes_visited
	histLeaves    *obs.Histogram // search.leaves_checked
	poolIdle      *obs.Gauge
	// Per-engine routing observability: ctrStrategy counts search requests
	// routed to each access path (planner.ha / planner.mih / planner.scan),
	// histEngine records per-query latency by engine (engine.<name>_ns).
	ctrStrategy [3]*obs.Counter
	histEngine  [3]*obs.Histogram
	// Load-shedding observability: total sheds plus a per-priority-class
	// split (shed.normal / shed.interactive / shed.batch).
	cntShed     *obs.Counter
	cntShedPrio [3]*obs.Counter

	mu      sync.Mutex
	ln      net.Listener
	debugLn net.Listener
	conns   map[net.Conn]struct{}
	closed  bool
	wg      sync.WaitGroup
}

// searcherSet is one admission ticket's bundle of per-engine searchers. ha
// is always present on an immutable server; mih only when Options.Engine
// enabled the multi-engine set. Mutable servers pool nil sets (the shard
// brings its own per-segment searchers).
type searcherSet struct {
	ha  *core.Searcher
	mih *core.Searcher
}

// New builds a server over a decoded snapshot — the pointer
// *core.DynamicIndex, the compiled *core.FrozenIndex, or an adapted engine
// such as MIH. The index must not be mutated once serving starts — the
// searcher pool shares it read-only.
func New(meta wire.SnapshotMeta, idx core.Index, opts Options) (*Server, error) {
	if idx.Length() != meta.Length {
		return nil, fmt.Errorf("server: index is %d-bit, snapshot header says %d", idx.Length(), meta.Length)
	}
	if dyn, ok := idx.(*core.DynamicIndex); ok {
		dyn.Flush() // settle any unflushed inserts before the read-only phase
	}
	s := newServer(meta, opts)
	s.idx = idx
	// index.mapped_bytes vs index.heap_bytes is the mmap dividend at a
	// glance: a zero-copy shard carries its whole arena in the first gauge.
	mapped, heap := 0, 0
	if fz, ok := idx.(*core.FrozenIndex); ok {
		mapped, heap = fz.MappedBytes(), fz.HeapBytes()
	} else if sized, ok := idx.(interface{ SizeBytes() int }); ok {
		heap = sized.SizeBytes()
	}
	s.reg.Gauge("index.mapped_bytes").Set(int64(mapped))
	s.reg.Gauge("index.heap_bytes").Set(int64(heap))
	switch s.opts.Engine {
	case "ha":
		// Single-engine serving; no planner, no auxiliary structures.
	case "auto", "mih", "scan":
		codes, ids, err := indexTuples(idx)
		if err != nil {
			return nil, fmt.Errorf("server: -engine %s: %w", s.opts.Engine, err)
		}
		m, err := mih.Build(codes, ids, mih.Options{})
		if err != nil {
			return nil, fmt.Errorf("server: building MIH engine: %w", err)
		}
		pl, err := planner.New(planner.Engines{
			HA:    idx,
			MIH:   core.AsIndex(m),
			Codes: codes,
			IDs:   ids,
		}, planner.Options{Seed: 1})
		if err != nil {
			return nil, fmt.Errorf("server: building planner: %w", err)
		}
		s.pl = pl
		s.scanCodes, s.scanIDs = codes, ids
		switch s.opts.Engine {
		case "auto":
			s.planned = true
		case "mih":
			s.fixedStrategy = planner.UseMIH
		case "scan":
			s.fixedStrategy = planner.UseScan
		}
	default:
		return nil, fmt.Errorf("server: unknown engine %q (want ha, auto, mih, or scan)", s.opts.Engine)
	}
	for i := 0; i < cap(s.pool); i++ {
		set := &searcherSet{ha: core.NewSearcher(idx)}
		if s.pl != nil {
			set.mih = core.NewSearcher(s.pl.Engines().MIH)
		}
		s.pool <- set
	}
	return s, nil
}

// indexTuples extracts the (id, code) pairs backing an index so the server
// can build the auxiliary engines. Every servable index — dynamic, frozen,
// or an adapted engine like MIH — enumerates its tuples.
func indexTuples(idx core.Index) ([]bitvec.Code, []int, error) {
	type tupler interface {
		Tuples(func(id int, code bitvec.Code))
	}
	src, ok := idx.(tupler)
	if !ok {
		if ei, isEng := idx.(*core.EngineIndex); isEng {
			src, ok = ei.Engine().(tupler)
		}
	}
	if !ok {
		return nil, nil, fmt.Errorf("index type %T cannot enumerate tuples", idx)
	}
	codes := make([]bitvec.Code, 0, idx.Len())
	ids := make([]int, 0, idx.Len())
	src.Tuples(func(id int, code bitvec.Code) {
		ids = append(ids, id)
		codes = append(codes, code)
	})
	return codes, ids, nil
}

// NewMutable builds a server over a mutable LSM shard. The caller keeps
// ownership of the shard's lifecycle up to Close, which waits out the
// shard's background seals and compactions. Insert/delete/seal frames are
// only reachable on sessions that negotiated protocol version 3 or later.
func NewMutable(meta wire.SnapshotMeta, sh *lsm.Shard, opts Options) (*Server, error) {
	if sh.Length() != meta.Length {
		return nil, fmt.Errorf("server: shard is %d-bit, snapshot header says %d", sh.Length(), meta.Length)
	}
	if opts.Engine != "" && opts.Engine != "ha" {
		return nil, fmt.Errorf("server: mutable shards serve the LSM engine only (engine %q unsupported)", opts.Engine)
	}
	s := newServer(meta, opts)
	s.shard = sh
	// The shard brings its own per-segment searcher pools; the channel still
	// bounds admission, with nil tickets.
	for i := 0; i < cap(s.pool); i++ {
		s.pool <- nil
	}
	return s, nil
}

func newServer(meta wire.SnapshotMeta, opts Options) *Server {
	if opts.Searchers <= 0 {
		opts.Searchers = runtime.GOMAXPROCS(0)
	}
	if opts.IdleTimeout == 0 {
		opts.IdleTimeout = 30 * time.Second
	}
	if opts.WriteTimeout == 0 {
		opts.WriteTimeout = 30 * time.Second
	}
	if opts.Obs == nil {
		opts.Obs = obs.NewRegistry()
	}
	if opts.TraceCapacity <= 0 {
		opts.TraceCapacity = 64
	}
	if opts.Engine == "" {
		opts.Engine = "ha"
	}
	s := &Server{
		meta:   meta,
		opts:   opts,
		pool:   make(chan *searcherSet, opts.Searchers),
		conns:  make(map[net.Conn]struct{}),
		reg:    opts.Obs,
		tracer: obs.NewTracer(opts.TraceCapacity),
	}
	s.reqCount = s.reg.Counter("requests")
	s.errCount = s.reg.Counter("errors")
	s.faultCount = s.reg.Counter("faults_injected")
	s.histSearch = s.reg.Histogram("req.search_ns")
	s.histTopK = s.reg.Histogram("req.topk_ns")
	s.histStats = s.reg.Histogram("req.stats_ns")
	s.histMutate = s.reg.Histogram("req.mutate_ns")
	s.histAdmission = s.reg.Histogram("admission_wait_ns")
	s.histDist = s.reg.Histogram("search.dist_comps")
	s.histNodes = s.reg.Histogram("search.nodes_visited")
	s.histLeaves = s.reg.Histogram("search.leaves_checked")
	s.poolIdle = s.reg.Gauge("pool.idle")
	s.poolIdle.Set(int64(opts.Searchers))
	for st, name := range [3]string{"ha", "mih", "scan"} {
		s.ctrStrategy[st] = s.reg.Counter("planner." + name)
		s.histEngine[st] = s.reg.Histogram("engine." + name + "_ns")
	}
	s.cntShed = s.reg.Counter("sheds")
	for p, name := range [3]string{"normal", "interactive", "batch"} {
		s.cntShedPrio[p] = s.reg.Counter("shed." + name)
	}
	if opts.CacheEntries > 0 {
		s.cache = qcache.New(qcache.Options{MaxEntries: opts.CacheEntries, Obs: s.reg})
	}
	return s
}

// cacheVersion is the epoch field of this server's cache keys: the shard's
// mutation version in mutable mode, the constant 0 over an immutable index
// (which never changes, so one key space lives forever). It must be read
// BEFORE the search runs: a mutation racing the search may then be included
// in an entry keyed at the older version, but that entry is only readable
// by lookups that also raced the mutation — exactly the reads an uncached
// server could have answered either way. Once the mutation is acknowledged
// every later lookup reads the bumped version and misses.
func (s *Server) cacheVersion() uint64 {
	if s.shard != nil {
		return s.shard.Version()
	}
	return 0
}

// Obs returns the server's metric registry (counters, gauges, latency and
// per-search cost histograms).
func (s *Server) Obs() *obs.Registry { return s.reg }

// Tracer returns the ring of recent request traces.
func (s *Server) Tracer() *obs.Tracer { return s.tracer }

// LoadSnapshotFile is New over a snapshot file on disk. A pointer (v1)
// snapshot is compiled with core.Freeze before serving unless
// Options.PointerWalk is set; a frozen (v2) snapshot is served as decoded; a
// version-4 snapshot is mmap'd zero-copy when Options.Mmap is set.
func LoadSnapshotFile(path string, opts Options) (*Server, error) {
	if opts.Mmap {
		if meta, idx, err := wire.MapSnapshotFile(path); err == nil {
			srv, err := New(meta, idx, opts)
			if err != nil {
				idx.Close()
				return nil, err
			}
			srv.ownsIdx = true
			return srv, nil
		}
		// Not a v4 snapshot (or no mmap on this platform): fall through to
		// the eager reader — downward negotiation, same answers.
	}
	meta, idx, err := wire.ReadSnapshotFile(path)
	if err != nil {
		return nil, fmt.Errorf("server: loading snapshot %s: %w", path, err)
	}
	if dyn, ok := idx.(*core.DynamicIndex); ok && !opts.PointerWalk {
		idx = core.Freeze(dyn)
	}
	return New(meta, idx, opts)
}

// Meta returns the shard's snapshot header.
func (s *Server) Meta() wire.SnapshotMeta { return s.meta }

// Start listens on addr (e.g. "127.0.0.1:0") and serves in the background.
func (s *Server) Start(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ln.Close()
		return fmt.Errorf("server: already closed")
	}
	s.ln = ln
	s.mu.Unlock()
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		s.acceptLoop(ln)
	}()
	return nil
}

// Addr returns the bound listen address (after Start).
func (s *Server) Addr() net.Addr {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return nil
	}
	return s.ln.Addr()
}

func (s *Server) acceptLoop(ln net.Listener) {
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.handleConn(conn)
		}()
	}
}

// Close stops the listeners (serving and debug), closes all connections,
// and waits for handlers.
func (s *Server) Close() error {
	s.mu.Lock()
	s.closed = true
	ln, dln := s.ln, s.debugLn
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	if dln != nil {
		dln.Close()
	}
	s.wg.Wait()
	if s.shard != nil {
		s.shard.Close() // wait out background seals and compactions
	}
	if s.ownsIdx {
		if fz, ok := s.idx.(*core.FrozenIndex); ok {
			return fz.Close() // release the mmap'd arena
		}
	}
	return nil
}

// Stats returns a snapshot of the serving counters. The latency percentile
// fields summarize the per-request search and top-k histograms; the warmth
// fields (protocol v6) expose the result cache's occupancy and hit counters
// plus the admission queue's state, so a router can see which replica is
// hot and which is drowning.
func (s *Server) Stats() Stats {
	lat := s.histSearch.Snapshot()
	lat.Merge(s.histTopK.Snapshot())
	var cacheEntries, cacheHits, cacheMisses int64
	if s.cache != nil {
		cacheEntries, cacheHits, cacheMisses = s.cache.Warmth()
	}
	return Stats{
		Requests:             s.requests.Load(),
		Queries:              s.queries.Load(),
		TopKQueries:          s.topkQueries.Load(),
		IDsReturned:          s.idsReturned.Load(),
		Errors:               s.errors.Load(),
		FaultsInjected:       s.faultsInjected.Load(),
		DistanceComputations: s.distComps.Load(),
		NodesVisited:         s.nodesVisited.Load(),
		LeavesChecked:        s.leavesChecked.Load(),
		LatencyP50Ns:         lat.P50(),
		LatencyP95Ns:         lat.P95(),
		LatencyP99Ns:         lat.P99(),
		LatencyMaxNs:         lat.Max,
		CacheEntries:         cacheEntries,
		CacheHits:            cacheHits,
		CacheMisses:          cacheMisses,
		AdmissionP50Ns:       s.histAdmission.Snapshot().P50(),
		PoolIdle:             s.poolIdle.Value(),
	}
}

func (s *Server) handleConn(conn net.Conn) {
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	br := bufio.NewReader(conn)
	bw := bufio.NewWriter(conn)
	// Deadlines are the reap mechanism for dead and stalled clients: the
	// read deadline is re-armed before every frame (bounding both idle
	// sessions and half-written requests), the write deadline before every
	// response (bounding clients that stopped reading). Without them a
	// half-open connection pins this goroutine forever.
	readFrame := func() (wire.MsgType, []byte, error) {
		if s.opts.IdleTimeout > 0 {
			conn.SetReadDeadline(time.Now().Add(s.opts.IdleTimeout))
		}
		return wire.ReadFrame(br)
	}
	writeMsg := func(t wire.MsgType, payload []byte) bool {
		if s.opts.WriteTimeout > 0 {
			conn.SetWriteDeadline(time.Now().Add(s.opts.WriteTimeout))
		}
		if err := wire.WriteFrame(bw, t, payload); err != nil {
			return false
		}
		return bw.Flush() == nil
	}
	writeErr := func(format string, args ...interface{}) bool {
		s.errors.Add(1)
		s.errCount.Inc()
		return writeMsg(wire.MsgError, wire.ErrorMsg{Msg: fmt.Sprintf(format, args...)}.Append(nil))
	}

	// The session must open with a version handshake.
	t, payload, err := readFrame()
	if err != nil {
		return
	}
	if t != wire.MsgHello {
		writeErr("expected hello, got %s", t)
		return
	}
	hello, err := wire.ParseHello(payload)
	if err != nil {
		writeErr("bad hello: %v", err)
		return
	}
	// Negotiate downward: any client up to this build's version is served at
	// the lower of the two feature levels; a client from the future is
	// refused loudly.
	if hello.Version < 1 || hello.Version > wire.Version {
		writeErr("protocol version %d not supported (server speaks %d)", hello.Version, wire.Version)
		return
	}
	nego := hello.Version
	tuples := 0
	if s.shard != nil {
		tuples = s.shard.Len()
	} else {
		tuples = s.idx.Len()
	}
	ok := wire.HelloOK{
		Version: nego,
		Length:  s.meta.Length,
		Part:    s.meta.Part,
		Parts:   s.meta.Parts,
		Tuples:  tuples,
		Pivots:  s.meta.Pivots,
	}
	if !writeMsg(wire.MsgHelloOK, ok.Append(nil)) {
		return
	}

	for {
		t, payload, err := readFrame()
		if err != nil {
			return // client went away, stalled past the deadline, or sent garbage framing
		}
		switch t {
		case wire.MsgSearch, wire.MsgTopK:
			s.requests.Add(1)
			s.reqCount.Inc()
			t0 := time.Now()
			tr := obs.NewTrace(t.String())
			seq := s.reqSeq.Add(1) - 1
			f := s.opts.Faults.fault(seq)
			if f.Delay > 0 {
				s.faultsInjected.Add(1)
				s.faultCount.Inc()
				sp := tr.Start("fault.delay", 0)
				time.Sleep(f.Delay)
				tr.End(sp)
			}
			if f.Drop {
				s.faultsInjected.Add(1)
				s.faultCount.Inc()
				return
			}
			if f.Fail {
				s.faultsInjected.Add(1)
				s.faultCount.Inc()
				if !writeErr("injected failure of request %d", seq) {
					return
				}
				continue
			}
			if f.Shed && nego >= 5 {
				// A deterministic shed for smoke tests; sessions too old to
				// parse MsgShed are served normally instead.
				s.faultsInjected.Add(1)
				s.faultCount.Inc()
				respType, resp := s.shedResp(wire.PriorityNormal, 0)
				if !writeMsg(respType, resp) {
					return
				}
				continue
			}
			var respType wire.MsgType
			var resp []byte
			if t == wire.MsgSearch {
				respType, resp = s.answerSearch(payload, nego, tr)
			} else {
				respType, resp = s.answerTopK(payload, nego, tr)
			}
			if respType == wire.MsgError {
				s.errors.Add(1)
				s.errCount.Inc()
			}
			sp := tr.Start("write", 0)
			ok := writeMsg(respType, resp)
			tr.End(sp)
			if t == wire.MsgSearch {
				s.histSearch.RecordSince(t0)
			} else {
				s.histTopK.RecordSince(t0)
			}
			s.tracer.Add(tr)
			if !ok {
				return
			}
		case wire.MsgStats:
			t0 := time.Now()
			st := s.Stats()
			// Older peers reject trailing bytes: encode exactly the field
			// groups the negotiated version includes (warmth needs v6,
			// latency percentiles v2).
			ok := writeMsg(wire.MsgStatsOK, st.AppendVersion(nil, nego))
			s.histStats.RecordSince(t0)
			if !ok {
				return
			}
		case wire.MsgInsert, wire.MsgDelete, wire.MsgSeal:
			if nego < 3 {
				if !writeErr("%s requires protocol version 3 (session negotiated %d)", t, nego) {
					return
				}
				continue
			}
			if s.shard == nil {
				if !writeErr("shard is immutable: %s refused", t) {
					return
				}
				continue
			}
			s.requests.Add(1)
			s.reqCount.Inc()
			t0 := time.Now()
			var respType wire.MsgType
			var resp []byte
			switch t {
			case wire.MsgInsert:
				respType, resp = s.answerInsert(payload)
			case wire.MsgDelete:
				respType, resp = s.answerDelete(payload)
			default:
				respType, resp = s.answerSeal(payload)
			}
			if respType == wire.MsgError {
				s.errors.Add(1)
				s.errCount.Inc()
			}
			ok := writeMsg(respType, resp)
			s.histMutate.RecordSince(t0)
			if !ok {
				return
			}
		default:
			if !writeErr("unexpected %s frame", t) {
				return
			}
		}
	}
}

// pickStrategy resolves the access path for one search request: a forced
// wire hint wins (if the engine is enabled on this shard), else the planner
// decides in "auto" mode, else the configured fixed mode applies.
func (s *Server) pickStrategy(req wire.SearchReq) (planner.Strategy, error) {
	if req.Engine != wire.EngineAuto {
		if s.shard != nil {
			return 0, fmt.Errorf("mutable shard serves the LSM engine: hint %s refused", wire.EngineName(req.Engine))
		}
		var st planner.Strategy
		switch req.Engine {
		case wire.EngineHA:
			return planner.UseHA, nil
		case wire.EngineMIH:
			st = planner.UseMIH
		case wire.EngineScan:
			st = planner.UseScan
		default:
			return 0, fmt.Errorf("unknown engine hint %d", req.Engine)
		}
		if s.pl == nil || !s.pl.Available(st) {
			return 0, fmt.Errorf("engine %s not enabled on this shard (serving -engine %s)", st, s.opts.Engine)
		}
		return st, nil
	}
	if s.shard != nil || s.pl == nil {
		return planner.UseHA, nil
	}
	if s.planned {
		return s.pl.Plan(req.H).Strategy, nil
	}
	return s.fixedStrategy, nil
}

// scan is the server's brute-force path; unlike the planner's convenience
// scan it is stateless and safe to run from many batch workers at once.
func (s *Server) scan(q bitvec.Code, h int, stats *core.SearchStats) []int {
	var out []int
	for i, c := range s.scanCodes {
		if _, ok := q.DistanceWithin(c, h); ok {
			out = append(out, s.scanIDs[i])
		}
	}
	stats.DistanceComputations += len(s.scanCodes)
	stats.LeavesChecked += len(s.scanCodes)
	return out
}

// shedResp counts and encodes one shed answer.
func (s *Server) shedResp(priority int, waited time.Duration) (wire.MsgType, []byte) {
	s.cntShed.Inc()
	if priority >= 0 && priority < len(s.cntShedPrio) {
		s.cntShedPrio[priority].Inc()
	}
	return wire.MsgShed, wire.ShedResp{WaitNs: waited.Nanoseconds()}.Append(nil)
}

func (s *Server) answerSearch(payload []byte, nego int, tr *obs.Trace) (wire.MsgType, []byte) {
	req, err := wire.ParseSearchReq(payload, s.meta.Length)
	if err != nil {
		return wire.MsgError, wire.ErrorMsg{Msg: err.Error()}.Append(nil)
	}
	if req.H < 0 || req.H > s.meta.Length {
		return wire.MsgError, wire.ErrorMsg{Msg: fmt.Sprintf("threshold %d out of range", req.H)}.Append(nil)
	}
	st, err := s.pickStrategy(req)
	if err != nil {
		return wire.MsgError, wire.ErrorMsg{Msg: err.Error()}.Append(nil)
	}
	s.ctrStrategy[st].Inc()
	s.queries.Add(int64(len(req.Queries)))
	resp := wire.SearchResp{IDs: make([][]int, len(req.Queries))}
	returned := int64(0)

	// Cache phase, ahead of batched admission: answer every query the cache
	// can and only admit the misses. A fully cached request never consumes
	// an admission ticket — the overload-survival property the load
	// experiment measures. The mutation version is read before any search
	// runs; see cacheVersion for why that ordering is the safe one.
	//
	// The key carries the request's engine HINT, not the strategy the
	// planner resolved it to: every engine computes the same answer set,
	// and the measured planner is free to route borderline thresholds
	// differently from one request to the next — keying on its choice
	// would fragment identical answers across strategies and halve the
	// effective hit rate for auto traffic.
	miss := make([]int, 0, len(req.Queries))
	var missKeys [][]byte
	if s.cache != nil {
		span := tr.Start("cache", 0)
		ver := s.cacheVersion()
		var kb []byte
		for i, q := range req.Queries {
			kb = qcache.Key{Code: q, H: req.H, Engine: int(req.Engine), Shard: -1, Epoch: ver}.Append(kb[:0])
			if ids, ok := s.cache.Get(kb); ok {
				if len(ids) > 0 {
					// Zero-copy: the shared slice is only read while encoding
					// the response below.
					resp.IDs[i] = ids
					returned += int64(len(ids))
				}
				continue
			}
			miss = append(miss, i)
			missKeys = append(missKeys, append([]byte(nil), kb...))
		}
		tr.End(span)
	} else {
		for i := range req.Queries {
			miss = append(miss, i)
		}
	}
	if len(miss) > 0 {
		set, shed, waited := s.admit(s.shedBudget(nego, req.Priority), tr)
		if shed {
			return s.shedResp(req.Priority, waited)
		}
		s.runBatch(set, len(miss), tr, func(set *searcherSet, j int) core.SearchStats {
			i := miss[j]
			var ids []int
			var stats core.SearchStats
			t0 := time.Now()
			if s.shard != nil {
				ids = s.shard.SearchInto(req.Queries[i], req.H, &stats)
			} else {
				switch st {
				case planner.UseMIH:
					ids = set.mih.Search(req.Queries[i], req.H)
					stats = set.mih.Stats
				case planner.UseScan:
					ids = s.scan(req.Queries[i], req.H, &stats)
				default:
					ids = set.ha.Search(req.Queries[i], req.H)
					stats = set.ha.Stats
				}
			}
			ns := time.Since(t0).Nanoseconds()
			s.histEngine[st].Record(ns)
			if s.pl != nil {
				// Close the loop: serving latencies refine the planner's EWMA
				// cost cells, so the model tracks the live workload.
				s.pl.Observe(st, req.H, float64(ns))
			}
			var out []int
			if len(ids) > 0 {
				out = append([]int(nil), ids...)
				sort.Ints(out)
				resp.IDs[i] = out
				atomic.AddInt64(&returned, int64(len(out)))
			}
			if s.cache != nil {
				s.cache.Put(missKeys[j], out)
			}
			return stats
		})
	}
	s.idsReturned.Add(atomic.LoadInt64(&returned))
	return wire.MsgSearchOK, resp.Append(nil)
}

func (s *Server) answerTopK(payload []byte, nego int, tr *obs.Trace) (wire.MsgType, []byte) {
	req, err := wire.ParseTopKReq(payload, s.meta.Length)
	if err != nil {
		return wire.MsgError, wire.ErrorMsg{Msg: err.Error()}.Append(nil)
	}
	if req.K < 0 || req.K > 1<<20 {
		return wire.MsgError, wire.ErrorMsg{Msg: fmt.Sprintf("k %d out of range", req.K)}.Append(nil)
	}
	s.topkQueries.Add(int64(len(req.Queries)))
	resp := wire.TopKResp{IDs: make([][]int, len(req.Queries)), Dists: make([][]int, len(req.Queries))}
	returned := int64(0)
	if len(req.Queries) > 0 {
		// Top-k answers are not cached (the k-way merge keys on k, not H,
		// and the traffic is a sliver of select volume) but they respect
		// the same admission budget: an overloaded shard sheds them too.
		set, shed, waited := s.admit(s.shedBudget(nego, wire.PriorityNormal), tr)
		if shed {
			return s.shedResp(wire.PriorityNormal, waited)
		}
		s.runBatch(set, len(req.Queries), tr, func(set *searcherSet, i int) core.SearchStats {
			var ids, dists []int
			var stats core.SearchStats
			if s.shard != nil {
				ids, dists = s.shard.TopKInto(req.Queries[i], req.K, &stats)
			} else {
				// Top-k always runs on the primary index: the radius-escalating
				// search has no MIH/scan analogue worth routing to.
				ids, dists = set.ha.TopK(req.Queries[i], req.K)
				stats = set.ha.Stats
			}
			resp.IDs[i], resp.Dists[i] = ids, dists
			atomic.AddInt64(&returned, int64(len(ids)))
			return stats
		})
	}
	s.idsReturned.Add(atomic.LoadInt64(&returned))
	return wire.MsgTopKOK, resp.Append(nil)
}

// answerInsert applies a batch of upserts to the mutable shard.
func (s *Server) answerInsert(payload []byte) (wire.MsgType, []byte) {
	req, err := wire.ParseInsertReq(payload, s.meta.Length)
	if err != nil {
		return wire.MsgError, wire.ErrorMsg{Msg: err.Error()}.Append(nil)
	}
	replaced := 0
	for i, id := range req.IDs {
		if s.shard.Insert(id, req.Codes[i]) {
			replaced++
		}
	}
	st := s.shard.Stats()
	resp := wire.InsertResp{
		Upserts:      len(req.IDs),
		Replaced:     replaced,
		MemtableSize: st.MemtableSize,
		Epoch:        st.Epoch,
	}
	return wire.MsgInsertOK, resp.Append(nil)
}

// answerDelete applies a batch of deletes; ids not live on this shard are
// counted out, not errors — the router broadcasts deletes to every shard.
func (s *Server) answerDelete(payload []byte) (wire.MsgType, []byte) {
	req, err := wire.ParseDeleteReq(payload)
	if err != nil {
		return wire.MsgError, wire.ErrorMsg{Msg: err.Error()}.Append(nil)
	}
	deleted := 0
	for _, id := range req.IDs {
		if s.shard.Delete(id) {
			deleted++
		}
	}
	st := s.shard.Stats()
	return wire.MsgDeleteOK, wire.DeleteResp{Deleted: deleted, Epoch: st.Epoch}.Append(nil)
}

// answerSeal runs a synchronous seal (and optional compaction), so the OK
// frame doubles as a structural barrier for the connection.
func (s *Server) answerSeal(payload []byte) (wire.MsgType, []byte) {
	req, err := wire.ParseSealReq(payload)
	if err != nil {
		return wire.MsgError, wire.ErrorMsg{Msg: err.Error()}.Append(nil)
	}
	s.shard.Seal(req.Compact)
	st := s.shard.Stats()
	resp := wire.SealOK{
		Segments:     st.Segments,
		MemtableSize: st.MemtableSize,
		Tombstones:   st.Tombstones,
		Epoch:        st.Epoch,
	}
	return wire.MsgSealOK, resp.Append(nil)
}

// shedBudget resolves the admission-wait budget for one request: the
// configured ShedAfter scaled by the wire priority class. Zero means block
// indefinitely (shedding off, or a session too old to parse MsgShed).
func (s *Server) shedBudget(nego, priority int) time.Duration {
	if s.opts.ShedAfter <= 0 || nego < 5 {
		return 0
	}
	switch priority {
	case wire.PriorityInteractive:
		return 2 * s.opts.ShedAfter
	case wire.PriorityBatch:
		return s.opts.ShedAfter / 2
	}
	return s.opts.ShedAfter
}

// admit blocks for one admission ticket, up to budget (0 = forever). It
// reports the acquired set (nil is a valid ticket on a mutable server), a
// shed flag, and how long the request waited. The blocking wait is the
// queueing delay a saturated pool imposes; its span and histogram are where
// overload shows up first — and, past the budget, where it is shed.
func (s *Server) admit(budget time.Duration, tr *obs.Trace) (set *searcherSet, shed bool, waited time.Duration) {
	t0 := time.Now()
	adm := tr.Start("admission", 0)
	if budget <= 0 {
		set = <-s.pool
	} else {
		select {
		case set = <-s.pool:
		default:
			timer := time.NewTimer(budget)
			select {
			case set = <-s.pool:
				timer.Stop()
			case <-timer.C:
				shed = true
			}
		}
	}
	tr.End(adm)
	waited = time.Since(t0)
	s.histAdmission.Record(waited.Nanoseconds())
	return set, shed, waited
}

// runBatch executes one request's queries with batched admission: the
// caller has already blocked for one searcher through admit (the admission
// ticket — at most Options.Searchers requests make progress at once), and
// runBatch opportunistically grabs idle extras to parallelize the batch, so
// a lone large batch uses the whole pool while concurrent small requests
// are not starved. Queries are claimed off an atomic cursor, mirroring
// core.SearchBatch. run returns the index work one query did; in mutable
// mode the pooled set is a nil admission ticket and the shard supplies its
// own per-segment searchers.
func (s *Server) runBatch(first *searcherSet, n int, tr *obs.Trace, run func(set *searcherSet, i int) core.SearchStats) {
	if n == 0 {
		s.pool <- first
		return
	}
	searchers := []*searcherSet{first}
	for len(searchers) < n {
		select {
		case sr := <-s.pool:
			searchers = append(searchers, sr)
		default:
			goto acquired
		}
	}
acquired:
	s.poolIdle.Add(-int64(len(searchers)))
	runSpan := tr.Start("run", 0)
	var cursor atomic.Int64
	var wg sync.WaitGroup
	for _, sr := range searchers {
		wg.Add(1)
		go func(sr *searcherSet) {
			defer wg.Done()
			var agg core.SearchStats
			for {
				i := int(cursor.Add(1)) - 1
				if i >= n {
					break
				}
				stats := run(sr, i)
				agg.Add(stats)
				// Per-search cost distributions: how much index work one
				// query did, the core.SearchStats flow into the registry.
				s.histDist.Record(int64(stats.DistanceComputations))
				s.histNodes.Record(int64(stats.NodesVisited))
				s.histLeaves.Record(int64(stats.LeavesChecked))
			}
			s.distComps.Add(int64(agg.DistanceComputations))
			s.nodesVisited.Add(int64(agg.NodesVisited))
			s.leavesChecked.Add(int64(agg.LeavesChecked))
			s.pool <- sr
			s.poolIdle.Add(1)
		}(sr)
	}
	wg.Wait()
	tr.End(runSpan)
}
