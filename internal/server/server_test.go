package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"math/rand"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"testing"
	"time"

	"haindex/internal/bitvec"
	"haindex/internal/core"
	"haindex/internal/histo"
	"haindex/internal/lsm"
	"haindex/internal/obs"
	"haindex/internal/wire"
)

func testShard(t *testing.T, rng *rand.Rand, n, bits, parts, part int) (wire.SnapshotMeta, *core.DynamicIndex, []bitvec.Code) {
	t.Helper()
	codes := make([]bitvec.Code, n)
	for i := range codes {
		codes[i] = bitvec.Rand(rng, bits)
	}
	pivots := histo.Pivots(codes[:n/4], parts)
	var own []bitvec.Code
	var ids []int
	for i, c := range codes {
		if histo.PartitionID(pivots, c) == part {
			own = append(own, c)
			ids = append(ids, i)
		}
	}
	meta := wire.SnapshotMeta{Part: part, Parts: parts, Length: bits, Pivots: pivots}
	return meta, core.BuildDynamic(own, ids, core.Options{}), codes
}

// client is a minimal raw-protocol client for server tests.
type client struct {
	conn net.Conn
	br   *bufio.Reader
	t    *testing.T
}

func dialTest(t *testing.T, s *Server) *client {
	t.Helper()
	conn, err := net.Dial("tcp", s.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	return &client{conn: conn, br: bufio.NewReader(conn), t: t}
}

func (c *client) roundTrip(typ wire.MsgType, payload []byte) (wire.MsgType, []byte) {
	c.t.Helper()
	if err := wire.WriteFrame(c.conn, typ, payload); err != nil {
		c.t.Fatal(err)
	}
	rt, resp, err := wire.ReadFrame(c.br)
	if err != nil {
		c.t.Fatal(err)
	}
	return rt, resp
}

func (c *client) hello() wire.HelloOK {
	c.t.Helper()
	rt, resp := c.roundTrip(wire.MsgHello, wire.Hello{Version: wire.Version}.Append(nil))
	if rt != wire.MsgHelloOK {
		c.t.Fatalf("handshake answered %s", rt)
	}
	ok, err := wire.ParseHelloOK(resp)
	if err != nil {
		c.t.Fatal(err)
	}
	return ok
}

func startTestServer(t *testing.T, meta wire.SnapshotMeta, idx *core.DynamicIndex, opts Options) *Server {
	t.Helper()
	s, err := New(meta, idx, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func TestServerSearchMatchesLocalIndex(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	meta, idx, codes := testShard(t, rng, 800, 32, 3, 1)
	s := startTestServer(t, meta, idx, Options{Searchers: 4})
	c := dialTest(t, s)
	ok := c.hello()
	if ok.Part != 1 || ok.Parts != 3 || ok.Length != 32 || ok.Tuples != idx.Len() || len(ok.Pivots) != 2 {
		t.Fatalf("hello: %+v", ok)
	}

	queries := make([]bitvec.Code, 50)
	for i := range queries {
		q := codes[rng.Intn(len(codes))].Clone()
		q.FlipBit(rng.Intn(32))
		queries[i] = q
	}
	rt, resp := c.roundTrip(wire.MsgSearch, wire.SearchReq{H: 3, Queries: queries}.Append(nil))
	if rt != wire.MsgSearchOK {
		t.Fatalf("search answered %s", rt)
	}
	parsed, err := wire.ParseSearchResp(resp)
	if err != nil {
		t.Fatal(err)
	}
	sr := core.NewSearcher(idx)
	for i, q := range queries {
		want := append([]int(nil), sr.Search(q, 3)...)
		sort.Ints(want)
		if len(want) == 0 {
			want = nil
		}
		got := parsed.IDs[i]
		if len(got) != len(want) {
			t.Fatalf("query %d: %d ids, want %d", i, len(got), len(want))
		}
		for j := range want {
			if got[j] != want[j] {
				t.Fatalf("query %d id %d: %d vs %d", i, j, got[j], want[j])
			}
		}
	}

	// Top-k must match the local searcher exactly, including tie order.
	rt, resp = c.roundTrip(wire.MsgTopK, wire.TopKReq{K: 7, Queries: queries[:10]}.Append(nil))
	if rt != wire.MsgTopKOK {
		t.Fatalf("topk answered %s", rt)
	}
	tk, err := wire.ParseTopKResp(resp)
	if err != nil {
		t.Fatal(err)
	}
	for i, q := range queries[:10] {
		ids, dists := sr.TopK(q, 7)
		if len(tk.IDs[i]) != len(ids) {
			t.Fatalf("topk query %d: %d vs %d results", i, len(tk.IDs[i]), len(ids))
		}
		for j := range ids {
			if tk.IDs[i][j] != ids[j] || tk.Dists[i][j] != dists[j] {
				t.Fatalf("topk query %d pos %d mismatch", i, j)
			}
		}
	}

	// Stats reflect the work.
	rt, resp = c.roundTrip(wire.MsgStats, nil)
	if rt != wire.MsgStatsOK {
		t.Fatalf("stats answered %s", rt)
	}
	st, err := wire.ParseStatsResp(resp)
	if err != nil {
		t.Fatal(err)
	}
	if st.Requests != 2 || st.Queries != 50 || st.TopKQueries != 10 || st.DistanceComputations == 0 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestServerRejectsVersionMismatch(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	meta, idx, _ := testShard(t, rng, 100, 16, 2, 0)
	s := startTestServer(t, meta, idx, Options{})
	c := dialTest(t, s)
	rt, resp := c.roundTrip(wire.MsgHello, wire.Hello{Version: wire.Version + 9}.Append(nil))
	if rt != wire.MsgError {
		t.Fatalf("mismatched version answered %s", rt)
	}
	em, err := wire.ParseErrorMsg(resp)
	if err != nil || em.Msg == "" {
		t.Fatalf("error frame: %+v %v", em, err)
	}
}

func TestServerRequiresHelloFirst(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	meta, idx, _ := testShard(t, rng, 100, 16, 2, 0)
	s := startTestServer(t, meta, idx, Options{})
	c := dialTest(t, s)
	rt, _ := c.roundTrip(wire.MsgSearch, wire.SearchReq{H: 1}.Append(nil))
	if rt != wire.MsgError {
		t.Fatalf("search before hello answered %s", rt)
	}
}

func TestServerFaultInjection(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	meta, idx, codes := testShard(t, rng, 200, 16, 2, 0)
	faults := NewFaultPlan().FailRequest(0).DropRequest(1)
	s := startTestServer(t, meta, idx, Options{Faults: faults})

	c := dialTest(t, s)
	c.hello()
	req := wire.SearchReq{H: 2, Queries: codes[:3]}.Append(nil)
	if rt, _ := c.roundTrip(wire.MsgSearch, req); rt != wire.MsgError {
		t.Fatalf("request 0 not failed: %s", rt)
	}
	// Request 1 drops the connection mid-request.
	if err := wire.WriteFrame(c.conn, wire.MsgSearch, req); err != nil {
		t.Fatal(err)
	}
	if _, _, err := wire.ReadFrame(c.br); err == nil {
		t.Fatal("request 1 not dropped")
	}
	// A fresh connection serves request 2 normally.
	c2 := dialTest(t, s)
	c2.hello()
	if rt, _ := c2.roundTrip(wire.MsgSearch, req); rt != wire.MsgSearchOK {
		t.Fatalf("request 2 answered %s", rt)
	}
	if got := s.Stats().FaultsInjected; got != 2 {
		t.Fatalf("FaultsInjected = %d, want 2", got)
	}
}

// TestServerConcurrentClients hammers one server from many goroutines; run
// under -race this exercises the searcher pool and stats counters.
func TestServerConcurrentClients(t *testing.T) {
	rng := rand.New(rand.NewSource(25))
	meta, idx, codes := testShard(t, rng, 600, 32, 2, 0)
	s := startTestServer(t, meta, idx, Options{Searchers: 3})
	oracle := core.NewSearcher(idx)
	type qa struct {
		q    bitvec.Code
		want []int
	}
	cases := make([]qa, 40)
	for i := range cases {
		q := codes[rng.Intn(len(codes))].Clone()
		q.FlipBit(rng.Intn(32))
		want := append([]int(nil), oracle.Search(q, 3)...)
		sort.Ints(want)
		cases[i] = qa{q: q, want: want}
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			conn, err := net.Dial("tcp", s.Addr().String())
			if err != nil {
				t.Error(err)
				return
			}
			defer conn.Close()
			br := bufio.NewReader(conn)
			if err := wire.WriteFrame(conn, wire.MsgHello, wire.Hello{Version: wire.Version}.Append(nil)); err != nil {
				t.Error(err)
				return
			}
			if _, _, err := wire.ReadFrame(br); err != nil {
				t.Error(err)
				return
			}
			for rep := 0; rep < 10; rep++ {
				c := cases[(w*10+rep)%len(cases)]
				if err := wire.WriteFrame(conn, wire.MsgSearch, wire.SearchReq{H: 3, Queries: []bitvec.Code{c.q}}.Append(nil)); err != nil {
					t.Error(err)
					return
				}
				rt, resp, err := wire.ReadFrame(br)
				if err != nil || rt != wire.MsgSearchOK {
					t.Errorf("worker %d: %v %v", w, rt, err)
					return
				}
				parsed, err := wire.ParseSearchResp(resp)
				if err != nil {
					t.Error(err)
					return
				}
				got := parsed.IDs[0]
				if len(got) != len(c.want) {
					t.Errorf("worker %d rep %d: %d ids, want %d", w, rep, len(got), len(c.want))
					return
				}
			}
		}(w)
	}
	wg.Wait()
}

func TestLoadSnapshotFile(t *testing.T) {
	rng := rand.New(rand.NewSource(26))
	meta, idx, _ := testShard(t, rng, 300, 32, 2, 1)
	var buf bytes.Buffer
	if err := wire.WriteSnapshot(&buf, meta, idx); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "shard.hasn")
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := LoadSnapshotFile(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if s.Meta().Part != 1 || s.idx.Len() != idx.Len() {
		t.Fatalf("loaded meta %+v len %d", s.Meta(), s.idx.Len())
	}
	if _, err := LoadSnapshotFile(filepath.Join(t.TempDir(), "missing"), Options{}); err == nil {
		t.Fatal("missing snapshot accepted")
	}
}

// TestServerReapsDeadClient is the deadline bugfix's regression test: a
// client that goes silent (or half-writes a frame) must be reaped by the
// idle deadline instead of pinning its handler goroutine forever.
func TestServerReapsDeadClient(t *testing.T) {
	rng := rand.New(rand.NewSource(27))
	meta, idx, _ := testShard(t, rng, 100, 16, 2, 0)
	s := startTestServer(t, meta, idx, Options{IdleTimeout: 100 * time.Millisecond})

	// Connection 1: handshakes, then goes silent mid-session.
	c := dialTest(t, s)
	c.hello()
	// Connection 2: half-writes a frame header and stalls.
	half, err := net.Dial("tcp", s.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { half.Close() })
	if _, err := half.Write([]byte{0, 0}); err != nil {
		t.Fatal(err)
	}

	// Both connections must be closed by the server: reads unblock with an
	// error long before any request was answered.
	deadline := time.Now().Add(5 * time.Second)
	for _, conn := range []net.Conn{c.conn, half} {
		conn.SetReadDeadline(deadline)
		if _, err := conn.Read(make([]byte, 1)); err == nil {
			t.Fatal("dead connection still served")
		} else if ne, ok := err.(net.Error); ok && ne.Timeout() {
			t.Fatal("server never reaped the dead connection")
		}
	}
	// The handler bookkeeping must drain too — no goroutine pinned.
	for start := time.Now(); ; {
		s.mu.Lock()
		n := len(s.conns)
		s.mu.Unlock()
		if n == 0 {
			break
		}
		if time.Since(start) > 5*time.Second {
			t.Fatalf("%d connections still tracked after reap", n)
		}
		time.Sleep(5 * time.Millisecond)
	}
	// A live client arriving afterwards is served normally.
	c2 := dialTest(t, s)
	c2.hello()
}

// TestServerDebugEndpoint exercises the observability surface end to end:
// after a few requests the debug endpoint must serve a registry snapshot
// with non-empty latency histograms and matching counters, and a trace dump.
func TestServerDebugEndpoint(t *testing.T) {
	rng := rand.New(rand.NewSource(28))
	meta, idx, codes := testShard(t, rng, 300, 16, 2, 0)
	s := startTestServer(t, meta, idx, Options{Searchers: 2})
	dbgAddr, err := s.StartDebug("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.StartDebug("127.0.0.1:0"); err == nil {
		t.Fatal("second debug endpoint accepted")
	}

	c := dialTest(t, s)
	c.hello()
	req := wire.SearchReq{H: 2, Queries: codes[:5]}.Append(nil)
	for i := 0; i < 4; i++ {
		if rt, _ := c.roundTrip(wire.MsgSearch, req); rt != wire.MsgSearchOK {
			t.Fatalf("search answered %s", rt)
		}
	}

	resp, err := http.Get("http://" + dbgAddr.String() + "/debug/obs")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var snap obs.RegistrySnapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	if snap.Counters["requests"] != 4 {
		t.Fatalf("debug snapshot requests = %d, want 4", snap.Counters["requests"])
	}
	lat := snap.Histograms["req.search_ns"]
	if lat.Count != 4 || lat.P50 <= 0 || lat.Max < lat.P50 {
		t.Fatalf("latency histogram: %+v", lat)
	}
	if snap.Histograms["search.dist_comps"].Count == 0 {
		t.Fatal("per-search cost histograms empty")
	}
	// Wire-level stats carry the same percentiles (the v2 field).
	rt, body := c.roundTrip(wire.MsgStats, nil)
	if rt != wire.MsgStatsOK {
		t.Fatalf("stats answered %s", rt)
	}
	st, err := wire.ParseStatsResp(body)
	if err != nil {
		t.Fatal(err)
	}
	if st.LatencyP50Ns != lat.P50 || st.LatencyMaxNs < st.LatencyP50Ns {
		t.Fatalf("wire stats percentiles %+v vs debug %+v", st, lat)
	}

	tresp, err := http.Get("http://" + dbgAddr.String() + "/debug/traces")
	if err != nil {
		t.Fatal(err)
	}
	defer tresp.Body.Close()
	var traces struct {
		Total   int64           `json:"total"`
		Slowest json.RawMessage `json:"slowest"`
		Recent  json.RawMessage `json:"recent"`
	}
	if err := json.NewDecoder(tresp.Body).Decode(&traces); err != nil {
		t.Fatal(err)
	}
	if traces.Total != 4 || string(traces.Slowest) == "null" {
		t.Fatalf("trace dump: total=%d slowest=%s", traces.Total, traces.Slowest)
	}
}

// TestServerEngineRouting starts an -engine auto server and checks that
// every access path — the planner's choice and all three forced hints —
// returns exactly the local oracle's answer, and that the routing shows up
// in the per-engine counters and latency histograms.
func TestServerEngineRouting(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	meta, idx, codes := testShard(t, rng, 600, 32, 2, 0)
	s := startTestServer(t, meta, idx, Options{Searchers: 3, Engine: "auto"})
	c := dialTest(t, s)
	c.hello()

	queries := make([]bitvec.Code, 20)
	for i := range queries {
		q := codes[rng.Intn(len(codes))].Clone()
		q.FlipBit(rng.Intn(32))
		queries[i] = q
	}
	oracle := core.NewSearcher(idx)
	want := make([][]int, len(queries))
	for i, q := range queries {
		want[i] = append([]int(nil), oracle.Search(q, 4)...)
		sort.Ints(want[i])
	}
	check := func(engine int) {
		t.Helper()
		req := wire.SearchReq{H: 4, Engine: engine, Queries: queries}.Append(nil)
		rt, resp := c.roundTrip(wire.MsgSearch, req)
		if rt != wire.MsgSearchOK {
			t.Fatalf("engine %s answered %s", wire.EngineName(engine), rt)
		}
		parsed, err := wire.ParseSearchResp(resp)
		if err != nil {
			t.Fatal(err)
		}
		for i := range queries {
			got := parsed.IDs[i]
			if len(got) != len(want[i]) {
				t.Fatalf("engine %s query %d: %d ids, want %d", wire.EngineName(engine), i, len(got), len(want[i]))
			}
			for j := range got {
				if got[j] != want[i][j] {
					t.Fatalf("engine %s query %d id %d: %d vs %d", wire.EngineName(engine), i, j, got[j], want[i][j])
				}
			}
		}
	}
	for _, engine := range []int{wire.EngineAuto, wire.EngineHA, wire.EngineMIH, wire.EngineScan} {
		check(engine)
	}

	snap := s.Obs().Snapshot()
	var routed int64
	for _, name := range []string{"planner.ha", "planner.mih", "planner.scan"} {
		routed += snap.Counters[name]
	}
	if routed != 4 {
		t.Fatalf("strategy counters sum to %d, want 4 (one per request)", routed)
	}
	// The three forced requests guarantee at least one sample per engine.
	for _, name := range []string{"engine.ha_ns", "engine.mih_ns", "engine.scan_ns"} {
		if snap.Histograms[name].Count == 0 {
			t.Fatalf("histogram %s empty", name)
		}
	}
}

// TestServerFixedEngineModes pins -engine mih and -engine scan servers to
// their engines and checks results still match the HA oracle.
func TestServerFixedEngineModes(t *testing.T) {
	rng := rand.New(rand.NewSource(30))
	meta, idx, codes := testShard(t, rng, 400, 32, 2, 1)
	oracle := core.NewSearcher(idx)
	q := codes[rng.Intn(len(codes))].Clone()
	q.FlipBit(3)
	want := append([]int(nil), oracle.Search(q, 5)...)
	sort.Ints(want)
	for _, mode := range []string{"mih", "scan"} {
		s := startTestServer(t, meta, idx, Options{Engine: mode})
		c := dialTest(t, s)
		c.hello()
		rt, resp := c.roundTrip(wire.MsgSearch, wire.SearchReq{H: 5, Queries: []bitvec.Code{q}}.Append(nil))
		if rt != wire.MsgSearchOK {
			t.Fatalf("mode %s answered %s", mode, rt)
		}
		parsed, err := wire.ParseSearchResp(resp)
		if err != nil {
			t.Fatal(err)
		}
		got := parsed.IDs[0]
		if len(got) != len(want) {
			t.Fatalf("mode %s: %d ids, want %d", mode, len(got), len(want))
		}
		snap := s.Obs().Snapshot()
		if snap.Counters["planner."+mode] != 1 {
			t.Fatalf("mode %s: counter planner.%s = %d, want 1", mode, mode, snap.Counters["planner."+mode])
		}
	}
}

// TestServerEngineValidation covers the refusal paths: hints for engines
// the server did not enable, hints on mutable shards, and bad Engine
// options at construction.
func TestServerEngineValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	meta, idx, codes := testShard(t, rng, 200, 16, 2, 0)

	// Unknown Options.Engine is a construction error.
	if _, err := New(meta, idx, Options{Engine: "warp"}); err == nil {
		t.Fatal("bad engine option accepted")
	}

	// A plain "ha" server refuses mih/scan hints (engines not built).
	s := startTestServer(t, meta, idx, Options{})
	c := dialTest(t, s)
	c.hello()
	req := wire.SearchReq{H: 2, Engine: wire.EngineMIH, Queries: codes[:1]}.Append(nil)
	if rt, _ := c.roundTrip(wire.MsgSearch, req); rt != wire.MsgError {
		t.Fatalf("mih hint on ha-only server answered %s", rt)
	}
	// An explicit ha hint is always honored.
	req = wire.SearchReq{H: 2, Engine: wire.EngineHA, Queries: codes[:1]}.Append(nil)
	if rt, _ := c.roundTrip(wire.MsgSearch, req); rt != wire.MsgSearchOK {
		t.Fatalf("ha hint answered %s", rt)
	}

	// Mutable servers only accept Engine "ha" and refuse all hints.
	sh := lsm.New(16, lsm.Options{})
	if _, err := NewMutable(meta, sh, Options{Engine: "auto"}); err == nil {
		t.Fatal("mutable server accepted -engine auto")
	}
	ms, err := NewMutable(meta, sh, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := ms.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ms.Close() })
	mc := dialTest(t, ms)
	mc.hello()
	req = wire.SearchReq{H: 2, Engine: wire.EngineHA, Queries: codes[:1]}.Append(nil)
	if rt, _ := mc.roundTrip(wire.MsgSearch, req); rt != wire.MsgError {
		t.Fatalf("engine hint on mutable shard answered %s", rt)
	}
	req = wire.SearchReq{H: 2, Queries: codes[:1]}.Append(nil)
	if rt, _ := mc.roundTrip(wire.MsgSearch, req); rt != wire.MsgSearchOK {
		t.Fatalf("hintless search on mutable shard answered %s", rt)
	}
}

// TestLoadSnapshotFileMmap: a v4 snapshot served with Options.Mmap aliases
// its arena out of the file (mapped_bytes > 0, heap_bytes == 0), answers
// exactly like an eager load, and releases the mapping on Close; a v2
// snapshot under the same option falls back to the eager reader.
func TestLoadSnapshotFileMmap(t *testing.T) {
	rng := rand.New(rand.NewSource(28))
	meta, idx, codes := testShard(t, rng, 400, 32, 2, 1)
	frozen := core.Freeze(idx)
	dir := t.TempDir()

	v4 := filepath.Join(dir, "v4.hasn")
	f, err := os.Create(v4)
	if err != nil {
		t.Fatal(err)
	}
	if err := wire.WriteSnapshotArena(f, meta, frozen); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	s, err := LoadSnapshotFile(v4, Options{Mmap: true})
	if err != nil {
		t.Fatal(err)
	}
	g := s.Obs().Snapshot().Gauges
	fz, isFrozen := s.idx.(*core.FrozenIndex)
	if !isFrozen || !fz.ArenaForm() {
		t.Fatalf("mmap load produced %T", s.idx)
	}
	if fz.MappedBytes() > 0 { // zero-copy path available on this platform
		if g["index.mapped_bytes"] == 0 || g["index.heap_bytes"] != 0 {
			t.Fatalf("gauges mapped=%d heap=%d on an mmap'd shard", g["index.mapped_bytes"], g["index.heap_bytes"])
		}
	} else if g["index.heap_bytes"] == 0 {
		t.Fatalf("eager fallback shard reports zero heap bytes")
	}
	want := core.NewSearcher(frozen)
	got := core.NewSearcher(s.idx)
	for _, q := range codes[:30] {
		w := append([]int(nil), want.Search(q, 3)...)
		if g := got.Search(q, 3); len(g) != len(w) {
			t.Fatalf("mmap-served index answers %d ids, want %d", len(g), len(w))
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if fz.MappedBytes() != 0 {
		t.Fatal("Close did not release the mapping")
	}

	// v2 snapshot + Mmap option: downward negotiation to the eager reader.
	v2 := filepath.Join(dir, "v2.hasn")
	f, err = os.Create(v2)
	if err != nil {
		t.Fatal(err)
	}
	if err := wire.WriteSnapshot(f, meta, frozen); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	s2, err := LoadSnapshotFile(v2, Options{Mmap: true})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	g2 := s2.Obs().Snapshot().Gauges
	if g2["index.mapped_bytes"] != 0 || g2["index.heap_bytes"] == 0 {
		t.Fatalf("v2 fallback gauges mapped=%d heap=%d", g2["index.mapped_bytes"], g2["index.heap_bytes"])
	}
}
