package server

import (
	"bytes"
	"math/rand"
	"testing"
	"time"

	"haindex/internal/bitvec"
	"haindex/internal/lsm"
	"haindex/internal/wire"
)

// TestServerResultCache: with CacheEntries set, a repeated search is
// answered from the cache — byte-identically, with the hit/miss counters
// moving, and without consuming an admission ticket (asserted by draining
// the pool before the repeat).
func TestServerResultCache(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	meta, idx, codes := testShard(t, rng, 600, 32, 2, 0)
	s := startTestServer(t, meta, idx, Options{Searchers: 1, CacheEntries: 1024})
	c := dialTest(t, s)
	c.hello()

	queries := make([]bitvec.Code, 20)
	for i := range queries {
		q := codes[rng.Intn(len(codes))].Clone()
		q.FlipBit(rng.Intn(32))
		queries[i] = q
	}
	req := wire.SearchReq{H: 3, Queries: queries}.Append(nil)
	rt, first := c.roundTrip(wire.MsgSearch, req)
	if rt != wire.MsgSearchOK {
		t.Fatalf("cold search answered %s", rt)
	}
	if m := s.Obs().Counter("qcache.misses").Value(); m != 20 {
		t.Fatalf("cold pass recorded %d misses, want 20", m)
	}

	// Drain the only admission ticket: a fully cached request must still be
	// answered, because cache hits bypass admission entirely.
	ticket := <-s.pool
	done := make(chan struct{})
	var warm []byte
	go func() {
		defer close(done)
		rt, warm = c.roundTrip(wire.MsgSearch, req)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("cached search blocked on a drained admission pool")
	}
	s.pool <- ticket
	if rt != wire.MsgSearchOK {
		t.Fatalf("warm search answered %s", rt)
	}
	if !bytes.Equal(first, warm) {
		t.Fatal("cached answer differs from computed answer")
	}
	if h := s.Obs().Counter("qcache.hits").Value(); h != 20 {
		t.Fatalf("warm pass recorded %d hits, want 20", h)
	}
}

// TestServerCacheInvalidationOnMutation: on a mutable server the cache is
// keyed by lsm.Shard.Version, so an insert makes every pre-insert entry
// unreachable — the repeat search sees the new tuple, never a stale hit.
func TestServerCacheInvalidationOnMutation(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	meta, _, _ := testShard(t, rng, 100, 16, 1, 0)
	sh := lsm.New(16, lsm.Options{})
	s, err := NewMutable(meta, sh, Options{Searchers: 2, CacheEntries: 256})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	c := dialTest(t, s)
	c.hello()

	q := bitvec.Rand(rng, 16)
	req := wire.SearchReq{H: 0, Queries: []bitvec.Code{q}}.Append(nil)
	rt, resp := c.roundTrip(wire.MsgSearch, req)
	if rt != wire.MsgSearchOK {
		t.Fatalf("search answered %s", rt)
	}
	parsed, err := wire.ParseSearchResp(resp)
	if err != nil {
		t.Fatal(err)
	}
	if len(parsed.IDs[0]) != 0 {
		t.Fatalf("empty shard returned ids %v", parsed.IDs[0])
	}
	// Warm the (empty) entry, then insert the exact code searched for.
	c.roundTrip(wire.MsgSearch, req)
	if s.Obs().Counter("qcache.hits").Value() == 0 {
		t.Fatal("repeat search on an unchanged shard did not hit the cache")
	}
	ins := wire.InsertReq{Length: 16, IDs: []int{7}, Codes: []bitvec.Code{q}}.Append(nil)
	if rt, _ := c.roundTrip(wire.MsgInsert, ins); rt != wire.MsgInsertOK {
		t.Fatalf("insert answered %s", rt)
	}
	rt, resp = c.roundTrip(wire.MsgSearch, req)
	if rt != wire.MsgSearchOK {
		t.Fatalf("post-insert search answered %s", rt)
	}
	parsed, err = wire.ParseSearchResp(resp)
	if err != nil {
		t.Fatal(err)
	}
	if len(parsed.IDs[0]) != 1 || parsed.IDs[0][0] != 7 {
		t.Fatalf("post-insert search served stale cache: ids %v, want [7]", parsed.IDs[0])
	}
}

// TestServerShedsPastBudget: with the admission pool drained, a v5 search
// that waits past ShedAfter is answered MsgShed (with the wait reported and
// the per-priority counters moving), and serving recovers once a ticket
// returns. A batch-priority request sheds on its halved budget too.
func TestServerShedsPastBudget(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	meta, idx, codes := testShard(t, rng, 200, 16, 1, 0)
	s := startTestServer(t, meta, idx, Options{Searchers: 1, ShedAfter: 10 * time.Millisecond})
	c := dialTest(t, s)
	c.hello()

	ticket := <-s.pool
	req := wire.SearchReq{H: 2, Queries: codes[:3]}.Append(nil)
	rt, resp := c.roundTrip(wire.MsgSearch, req)
	if rt != wire.MsgShed {
		t.Fatalf("drained pool answered %s, want %s", rt, wire.MsgShed)
	}
	shed, err := wire.ParseShedResp(resp)
	if err != nil {
		t.Fatal(err)
	}
	if shed.WaitNs < (10 * time.Millisecond).Nanoseconds() {
		t.Fatalf("shed reported %dns waited, want >= budget", shed.WaitNs)
	}
	if s.Obs().Counter("sheds").Value() != 1 || s.Obs().Counter("shed.normal").Value() != 1 {
		t.Fatal("shed counters did not move")
	}

	// Priority rides the wire: a batch-class request sheds (on half the
	// budget) and is counted under its own class.
	breq := wire.SearchReq{H: 2, Priority: wire.PriorityBatch, Queries: codes[:3]}.Append(nil)
	if rt, _ := c.roundTrip(wire.MsgSearch, breq); rt != wire.MsgShed {
		t.Fatalf("batch-priority search answered %s, want %s", rt, wire.MsgShed)
	}
	if s.Obs().Counter("shed.batch").Value() != 1 {
		t.Fatal("shed.batch did not move")
	}

	// Top-k requests respect the same budget.
	treq := wire.TopKReq{K: 2, Queries: codes[:1]}.Append(nil)
	if rt, _ := c.roundTrip(wire.MsgTopK, treq); rt != wire.MsgShed {
		t.Fatalf("top-k on drained pool answered %s, want %s", rt, wire.MsgShed)
	}

	s.pool <- ticket
	if rt, _ := c.roundTrip(wire.MsgSearch, req); rt != wire.MsgSearchOK {
		t.Fatalf("search after ticket returned answered %s", rt)
	}
}

// TestServerShedFaultAndGating: a planned ShedRequest fault answers v5
// sessions with MsgShed deterministically, and is ignored on a session
// negotiated below protocol v5 — old clients are never sent frames they
// cannot parse.
func TestServerShedFaultAndGating(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	meta, idx, codes := testShard(t, rng, 200, 16, 1, 0)
	plan := NewFaultPlan().ShedRequest(0).ShedRequest(1)
	s := startTestServer(t, meta, idx, Options{Searchers: 2, Faults: plan})

	c := dialTest(t, s)
	c.hello()
	req := wire.SearchReq{H: 2, Queries: codes[:2]}.Append(nil)
	rt, resp := c.roundTrip(wire.MsgSearch, req)
	if rt != wire.MsgShed {
		t.Fatalf("planned shed answered %s", rt)
	}
	if _, err := wire.ParseShedResp(resp); err != nil {
		t.Fatal(err)
	}
	if s.Obs().Counter("faults_injected").Value() == 0 {
		t.Fatal("fault counter did not move")
	}

	// A v4 session: request seq 1 is also planned to shed, but the fault is
	// gated on the negotiated version and the request is served normally.
	c4 := dialTest(t, s)
	rt, resp = c4.roundTrip(wire.MsgHello, wire.Hello{Version: 4}.Append(nil))
	if rt != wire.MsgHelloOK {
		t.Fatalf("v4 handshake answered %s", rt)
	}
	ok, err := wire.ParseHelloOK(resp)
	if err != nil {
		t.Fatal(err)
	}
	if ok.Version != 4 {
		t.Fatalf("negotiated %d, want 4", ok.Version)
	}
	if rt, _ := c4.roundTrip(wire.MsgSearch, req); rt != wire.MsgSearchOK {
		t.Fatalf("planned shed on v4 session answered %s, want normal service", rt)
	}
}

// TestServerStatsWarmthVersioned: a v6 session's stats snapshot carries the
// cache-warmth and admission-load fields, while a v5 session gets the
// shorter payload those peers expect — with the warmth left zero after
// parsing, never trailing bytes.
func TestServerStatsWarmthVersioned(t *testing.T) {
	rng := rand.New(rand.NewSource(45))
	meta, idx, codes := testShard(t, rng, 200, 16, 1, 0)
	s := startTestServer(t, meta, idx, Options{Searchers: 2, CacheEntries: 128})

	c := dialTest(t, s)
	c.hello()
	req := wire.SearchReq{H: 2, Queries: codes[:4]}.Append(nil)
	for i := 0; i < 2; i++ { // second pass hits the result cache
		if rt, _ := c.roundTrip(wire.MsgSearch, req); rt != wire.MsgSearchOK {
			t.Fatalf("search %d failed", i)
		}
	}
	rt, resp := c.roundTrip(wire.MsgStats, nil)
	if rt != wire.MsgStatsOK {
		t.Fatalf("stats answered %s", rt)
	}
	st, err := wire.ParseStatsResp(resp)
	if err != nil {
		t.Fatal(err)
	}
	if st.CacheEntries == 0 || st.CacheHits == 0 || st.CacheMisses == 0 {
		t.Fatalf("v6 stats carry no cache warmth: %+v", st)
	}
	if st.PoolIdle != 2 {
		t.Fatalf("PoolIdle = %d, want the 2 idle searchers", st.PoolIdle)
	}

	// A v5 peer must get the pre-warmth layout.
	c5 := dialTest(t, s)
	if rt, _ := c5.roundTrip(wire.MsgHello, wire.Hello{Version: 5}.Append(nil)); rt != wire.MsgHelloOK {
		t.Fatal("v5 handshake refused")
	}
	rt, resp = c5.roundTrip(wire.MsgStats, nil)
	if rt != wire.MsgStatsOK {
		t.Fatalf("v5 stats answered %s", rt)
	}
	st5, err := wire.ParseStatsResp(resp)
	if err != nil {
		t.Fatalf("v5 stats payload: %v", err)
	}
	if st5.CacheEntries != 0 || st5.CacheHits != 0 || st5.PoolIdle != 0 {
		t.Fatalf("v5 session leaked warmth fields: %+v", st5)
	}
	if st5.Requests == 0 || st5.LatencyP50Ns == 0 {
		t.Fatalf("v5 stats lost pre-v6 fields: %+v", st5)
	}
}
