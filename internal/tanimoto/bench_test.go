package tanimoto

import (
	"math/rand"
	"testing"

	"haindex/internal/core"
)

func BenchmarkTanimotoSearch(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	prints := sparseFingerprints(rng, 20000, 1024, 50)
	idx, err := New(prints, nil, core.Options{})
	if err != nil {
		b.Fatal(err)
	}
	for _, t := range []float64{0.95, 0.7} {
		b.Run(bname(t), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := idx.Search(prints[i%len(prints)], t); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func bname(t float64) string {
	if t > 0.9 {
		return "t=0.95"
	}
	return "t=0.70"
}

func BenchmarkTanimotoScan(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	prints := sparseFingerprints(rng, 20000, 1024, 50)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := prints[i%len(prints)]
		for _, p := range prints {
			Similarity(q, p)
		}
	}
}
