// Package tanimoto implements Tanimoto-similarity search over binary
// fingerprints by reduction to Hamming-distance range queries — the
// transformation the paper's related work cites for chemical informatics
// (Zhang et al., SSDBM'13, Section 2 of the paper).
//
// For fingerprints a, b with popcounts |a|, |b| and Hamming distance H:
//
//	|a ∧ b| = (|a| + |b| − H) / 2      |a ∨ b| = (|a| + |b| + H) / 2
//	T(a,b)  = |a ∧ b| / |a ∨ b| ≥ t  ⇔  H ≤ (1−t)/(1+t) · (|a| + |b|)
//
// and T ≥ t also forces the popcount ratio bound t ≤ min/max(|a|,|b|).
// The index therefore buckets fingerprints by popcount, builds one Dynamic
// HA-Index per bucket, and answers a query by probing only the qualifying
// popcount buckets, each with its tight per-bucket Hamming threshold,
// verifying the exact Tanimoto on the survivors.
package tanimoto

import (
	"fmt"
	"math"
	"sort"

	"haindex/internal/bitvec"
	"haindex/internal/core"
)

// Match is one Tanimoto search result.
type Match struct {
	ID         int
	Similarity float64
}

// Index answers Tanimoto range queries over fixed-length fingerprints.
type Index struct {
	length  int
	n       int
	buckets map[int]*bucket
	// Stats aggregates the Hamming search work of the last query.
	Stats core.SearchStats
}

type bucket struct {
	idx   *core.DynamicIndex
	codes []bitvec.Code // by position, for exact verification
	ids   []int
}

// Similarity returns the Tanimoto coefficient of two equal-length
// fingerprints (1 for two empty fingerprints, by convention).
func Similarity(a, b bitvec.Code) float64 {
	ca, cb := a.OnesCount(), b.OnesCount()
	h := a.Distance(b)
	union := ca + cb + h
	if union == 0 {
		return 1
	}
	return float64(ca+cb-h) / float64(union)
}

// New indexes the fingerprints (ids default to positions).
func New(prints []bitvec.Code, ids []int, opts core.Options) (*Index, error) {
	if len(prints) == 0 {
		return nil, fmt.Errorf("tanimoto: empty dataset")
	}
	length := prints[0].Len()
	type group struct {
		codes []bitvec.Code
		ids   []int
	}
	byCount := make(map[int]*group)
	for i, p := range prints {
		if p.Len() != length {
			return nil, fmt.Errorf("tanimoto: mixed fingerprint lengths %d and %d", length, p.Len())
		}
		id := i
		if ids != nil {
			id = ids[i]
		}
		c := p.OnesCount()
		g := byCount[c]
		if g == nil {
			g = &group{}
			byCount[c] = g
		}
		g.codes = append(g.codes, p)
		g.ids = append(g.ids, id)
	}
	x := &Index{length: length, n: len(prints), buckets: make(map[int]*bucket, len(byCount))}
	for c, g := range byCount {
		x.buckets[c] = &bucket{
			idx:   core.BuildDynamic(g.codes, nil, opts),
			codes: g.codes,
			ids:   g.ids,
		}
	}
	return x, nil
}

// Len returns the number of indexed fingerprints.
func (x *Index) Len() int { return x.n }

// Search returns all fingerprints with Tanimoto similarity at least t to q,
// sorted by descending similarity (ties by ascending id). t must be in
// (0, 1].
func (x *Index) Search(q bitvec.Code, t float64) ([]Match, error) {
	if q.Len() != x.length {
		return nil, fmt.Errorf("tanimoto: %d-bit query against %d-bit index", q.Len(), x.length)
	}
	if t <= 0 || t > 1 {
		return nil, fmt.Errorf("tanimoto: threshold %v outside (0, 1]", t)
	}
	x.Stats = core.SearchStats{}
	qc := q.OnesCount()
	var out []Match
	if qc == 0 {
		// Only the empty fingerprint has nonzero similarity (=1) to an
		// empty query.
		if b, ok := x.buckets[0]; ok {
			for _, id := range b.ids {
				out = append(out, Match{ID: id, Similarity: 1})
			}
		}
		sortMatches(out)
		return out, nil
	}
	// Popcount ratio bound: t <= min/max(qc, c).
	lo := int(math.Ceil(t * float64(qc)))
	hi := int(math.Floor(float64(qc) / t))
	ratio := (1 - t) / (1 + t)
	var stats core.SearchStats
	for c := lo; c <= hi && c <= x.length; c++ {
		b, ok := x.buckets[c]
		if !ok {
			continue
		}
		h := int(math.Floor(ratio * float64(qc+c)))
		for _, pos := range b.idx.SearchInto(q, h, &stats) {
			// The Hamming bound is exact given the popcounts, but guard
			// with the definition for clarity and float safety.
			if s := Similarity(q, b.codes[pos]); s >= t-1e-12 {
				out = append(out, Match{ID: b.ids[pos], Similarity: s})
			}
		}
	}
	x.Stats = stats
	sortMatches(out)
	return out, nil
}

func sortMatches(ms []Match) {
	sort.Slice(ms, func(i, j int) bool {
		if ms[i].Similarity != ms[j].Similarity {
			return ms[i].Similarity > ms[j].Similarity
		}
		return ms[i].ID < ms[j].ID
	})
}
