package tanimoto

import (
	"math/rand"
	"testing"
	"testing/quick"

	"haindex/internal/bitvec"
	"haindex/internal/core"
)

// sparseFingerprints mimics chemical fingerprints: mostly-zero codes with a
// few dozen set bits, with family structure.
func sparseFingerprints(rng *rand.Rand, n, bits, families int) []bitvec.Code {
	bases := make([]bitvec.Code, families)
	for i := range bases {
		c := bitvec.New(bits)
		for j := 0; j < bits/8; j++ {
			c.SetBit(rng.Intn(bits), true)
		}
		bases[i] = c
	}
	out := make([]bitvec.Code, n)
	for i := range out {
		c := bases[rng.Intn(families)].Clone()
		for j := 0; j < 4; j++ {
			c.FlipBit(rng.Intn(bits))
		}
		out[i] = c
	}
	return out
}

func TestSimilarityBasics(t *testing.T) {
	a := bitvec.MustFromString("11110000")
	b := bitvec.MustFromString("11000000")
	// |a∧b|=2, |a∨b|=4.
	if got := Similarity(a, b); got != 0.5 {
		t.Fatalf("similarity = %v", got)
	}
	if Similarity(a, a) != 1 {
		t.Fatal("self similarity must be 1")
	}
	empty := bitvec.New(8)
	if Similarity(empty, empty) != 1 {
		t.Fatal("empty-empty similarity is 1 by convention")
	}
	if Similarity(a, empty) != 0 {
		t.Fatal("anything vs empty is 0")
	}
}

// TestHammingReduction verifies the T >= t ⇔ H <= (1-t)/(1+t)(|a|+|b|)
// equivalence the index relies on.
func TestHammingReduction(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 8 + rng.Intn(100)
		a, b := bitvec.Rand(rng, n), bitvec.Rand(rng, n)
		tt := 0.05 + rng.Float64()*0.9
		lhs := Similarity(a, b) >= tt
		bound := (1 - tt) / (1 + tt) * float64(a.OnesCount()+b.OnesCount())
		rhs := float64(a.Distance(b)) <= bound+1e-9
		return lhs == rhs
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSearchAgainstOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(171))
	prints := sparseFingerprints(rng, 400, 128, 8)
	idx, err := New(prints, nil, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if idx.Len() != 400 {
		t.Fatalf("len=%d", idx.Len())
	}
	for trial := 0; trial < 30; trial++ {
		q := prints[rng.Intn(len(prints))].Clone()
		for j := 0; j < rng.Intn(4); j++ {
			q.FlipBit(rng.Intn(128))
		}
		tt := []float64{0.5, 0.7, 0.85, 0.95}[rng.Intn(4)]
		got, err := idx.Search(q, tt)
		if err != nil {
			t.Fatal(err)
		}
		want := map[int]float64{}
		for i, p := range prints {
			if s := Similarity(q, p); s >= tt {
				want[i] = s
			}
		}
		if len(got) != len(want) {
			t.Fatalf("t=%v: got %d want %d", tt, len(got), len(want))
		}
		for _, m := range got {
			if s, ok := want[m.ID]; !ok || s != m.Similarity {
				t.Fatalf("unexpected match %v", m)
			}
		}
		// Sorted by descending similarity.
		for i := 1; i < len(got); i++ {
			if got[i].Similarity > got[i-1].Similarity {
				t.Fatal("not sorted")
			}
		}
	}
}

func TestSearchEdgeCases(t *testing.T) {
	rng := rand.New(rand.NewSource(172))
	prints := sparseFingerprints(rng, 50, 64, 3)
	empty := bitvec.New(64)
	prints = append(prints, empty)
	idx, err := New(prints, nil, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Empty query matches only the empty fingerprint.
	got, err := idx.Search(empty, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].ID != 50 || got[0].Similarity != 1 {
		t.Fatalf("empty query matches = %v", got)
	}
	// Threshold validation.
	if _, err := idx.Search(empty, 0); err == nil {
		t.Fatal("t=0 must error")
	}
	if _, err := idx.Search(empty, 1.5); err == nil {
		t.Fatal("t>1 must error")
	}
	if _, err := idx.Search(bitvec.New(32), 0.5); err == nil {
		t.Fatal("length mismatch must error")
	}
	if _, err := New(nil, nil, core.Options{}); err == nil {
		t.Fatal("empty dataset must error")
	}
}

// TestBucketPruning: high thresholds should probe far fewer than all
// fingerprints.
func TestBucketPruning(t *testing.T) {
	rng := rand.New(rand.NewSource(173))
	prints := sparseFingerprints(rng, 3000, 256, 30)
	idx, err := New(prints, nil, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	q := prints[0]
	if _, err := idx.Search(q, 0.95); err != nil {
		t.Fatal(err)
	}
	if idx.Stats.DistanceComputations >= len(prints) {
		t.Fatalf("no pruning: %d computations for %d prints",
			idx.Stats.DistanceComputations, len(prints))
	}
}
