package vector

import "math"

// TopKEigenSym computes the k largest eigenpairs of a symmetric positive
// semidefinite matrix by power iteration with deflation. It is the method of
// choice when the matrix is large (e.g. a 512×512 covariance) and only a few
// leading directions are needed, where full Jacobi would be cubic per sweep.
// Eigenvalues are returned in descending order; eigenvectors are the rows of
// the returned k×n matrix. The input is not modified.
func TopKEigenSym(a *Mat, k, iters int) (vals Vec, vecs *Mat) {
	n := a.Rows
	if n != a.Cols {
		panic("vector: TopKEigenSym of non-square matrix")
	}
	if k > n {
		k = n
	}
	if iters <= 0 {
		iters = 100
	}
	w := NewMat(n, n)
	copy(w.Data, a.Data)
	vals = make(Vec, k)
	vecs = NewMat(k, n)
	for comp := 0; comp < k; comp++ {
		// Deterministic start: spread mass over all coordinates with a
		// component-dependent phase so successive components do not start
		// parallel to an already-deflated direction.
		v := make(Vec, n)
		for i := range v {
			v[i] = math.Cos(float64(i+1) * float64(comp+1) * 0.7391)
		}
		normalize(v)
		var lambda float64
		for it := 0; it < iters; it++ {
			next := w.MulVec(v)
			l := next.Norm()
			if l < 1e-15 {
				// Remaining spectrum is (numerically) zero.
				break
			}
			next.Scale(1 / l)
			delta := 1 - math.Abs(next.Dot(v))
			v = next
			lambda = l
			if delta < 1e-12 && it > 2 {
				break
			}
		}
		// Rayleigh quotient gives a signed eigenvalue even though the norm
		// above is unsigned; covariance matrices are PSD so they agree.
		lambda = v.Dot(w.MulVec(v))
		vals[comp] = lambda
		copy(vecs.Row(comp), v)
		// Deflate: w -= lambda * v vᵀ.
		for i := 0; i < n; i++ {
			vi := v[i]
			if vi == 0 {
				continue
			}
			row := w.Row(i)
			for j := 0; j < n; j++ {
				row[j] -= lambda * vi * v[j]
			}
		}
	}
	return vals, vecs
}

func normalize(v Vec) {
	n := v.Norm()
	if n > 0 {
		v.Scale(1 / n)
	}
}

// PCATopK computes the top-k principal directions using power iteration,
// suitable for high-dimensional data where full Jacobi is too slow. It
// returns the data mean and a k×d projection matrix whose rows are the
// principal directions.
func PCATopK(rows []Vec, k, iters int) (mean Vec, proj *Mat) {
	cov := Covariance(rows)
	_, vecs := TopKEigenSym(cov, k, iters)
	return Mean(rows), vecs
}
