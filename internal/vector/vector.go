// Package vector provides dense d-dimensional vectors and the small pieces
// of numerical linear algebra (mean, covariance, symmetric eigen-
// decomposition) that the learned similarity hash functions and the exact
// kNN baselines are built on.
package vector

import (
	"fmt"
	"math"
)

// Vec is a dense d-dimensional point.
type Vec []float64

// Clone returns a deep copy of v.
func (v Vec) Clone() Vec {
	out := make(Vec, len(v))
	copy(out, v)
	return out
}

// Dot returns the inner product of v and w. It panics on dimension mismatch.
func (v Vec) Dot(w Vec) float64 {
	if len(v) != len(w) {
		panic(fmt.Sprintf("vector: dot of %d-d and %d-d vectors", len(v), len(w)))
	}
	s := 0.0
	for i, x := range v {
		s += x * w[i]
	}
	return s
}

// Sub returns v - w as a new vector.
func (v Vec) Sub(w Vec) Vec {
	out := make(Vec, len(v))
	for i, x := range v {
		out[i] = x - w[i]
	}
	return out
}

// Add accumulates w into v in place.
func (v Vec) Add(w Vec) {
	for i, x := range w {
		v[i] += x
	}
}

// Scale multiplies v by s in place.
func (v Vec) Scale(s float64) {
	for i := range v {
		v[i] *= s
	}
}

// Norm returns the Euclidean norm of v.
func (v Vec) Norm() float64 { return math.Sqrt(v.Dot(v)) }

// Dist returns the Euclidean distance between v and w.
func (v Vec) Dist(w Vec) float64 {
	s := 0.0
	for i, x := range v {
		d := x - w[i]
		s += d * d
	}
	return math.Sqrt(s)
}

// Dist2 returns the squared Euclidean distance between v and w; cheaper when
// only comparisons are needed.
func (v Vec) Dist2(w Vec) float64 {
	s := 0.0
	for i, x := range v {
		d := x - w[i]
		s += d * d
	}
	return s
}

// Mean returns the componentwise mean of the rows. It panics if rows is
// empty.
func Mean(rows []Vec) Vec {
	if len(rows) == 0 {
		panic("vector: mean of empty set")
	}
	d := len(rows[0])
	m := make(Vec, d)
	for _, r := range rows {
		m.Add(r)
	}
	m.Scale(1 / float64(len(rows)))
	return m
}

// Covariance returns the d×d sample covariance matrix of the rows around
// their mean, as a dense row-major matrix.
func Covariance(rows []Vec) *Mat {
	n := len(rows)
	if n < 2 {
		panic("vector: covariance needs at least 2 rows")
	}
	d := len(rows[0])
	mean := Mean(rows)
	cov := NewMat(d, d)
	for _, r := range rows {
		c := r.Sub(mean)
		for i := 0; i < d; i++ {
			ci := c[i]
			if ci == 0 {
				continue
			}
			row := cov.Row(i)
			for j := i; j < d; j++ {
				row[j] += ci * c[j]
			}
		}
	}
	inv := 1 / float64(n-1)
	for i := 0; i < d; i++ {
		for j := i; j < d; j++ {
			v := cov.At(i, j) * inv
			cov.Set(i, j, v)
			cov.Set(j, i, v)
		}
	}
	return cov
}

// Mat is a dense row-major matrix.
type Mat struct {
	Rows, Cols int
	Data       []float64
}

// NewMat returns a zeroed r×c matrix.
func NewMat(r, c int) *Mat {
	return &Mat{Rows: r, Cols: c, Data: make([]float64, r*c)}
}

// At returns element (i, j).
func (m *Mat) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Mat) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Row returns row i as a mutable slice aliasing the matrix storage.
func (m *Mat) Row(i int) []float64 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// Col returns column j as a fresh vector.
func (m *Mat) Col(j int) Vec {
	out := make(Vec, m.Rows)
	for i := 0; i < m.Rows; i++ {
		out[i] = m.At(i, j)
	}
	return out
}

// MulVec returns m·v.
func (m *Mat) MulVec(v Vec) Vec {
	if len(v) != m.Cols {
		panic(fmt.Sprintf("vector: %dx%d matrix times %d-d vector", m.Rows, m.Cols, len(v)))
	}
	out := make(Vec, m.Rows)
	for i := 0; i < m.Rows; i++ {
		out[i] = Vec(m.Row(i)).Dot(v)
	}
	return out
}

// EigenSym computes the eigen-decomposition of a symmetric matrix using the
// cyclic Jacobi method. It returns eigenvalues in descending order and the
// corresponding orthonormal eigenvectors as the columns of the returned
// matrix. The input is not modified.
func EigenSym(a *Mat, maxSweeps int) (vals Vec, vecs *Mat) {
	n := a.Rows
	if n != a.Cols {
		panic("vector: EigenSym of non-square matrix")
	}
	if maxSweeps <= 0 {
		maxSweeps = 64
	}
	// Work on a copy.
	w := NewMat(n, n)
	copy(w.Data, a.Data)
	v := NewMat(n, n)
	for i := 0; i < n; i++ {
		v.Set(i, i, 1)
	}
	const eps = 1e-20
	for sweep := 0; sweep < maxSweeps; sweep++ {
		off := 0.0
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				off += w.At(i, j) * w.At(i, j)
			}
		}
		if off < eps {
			break
		}
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				apq := w.At(p, q)
				if math.Abs(apq) < eps {
					continue
				}
				app, aqq := w.At(p, p), w.At(q, q)
				theta := (aqq - app) / (2 * apq)
				t := math.Copysign(1, theta) / (math.Abs(theta) + math.Sqrt(theta*theta+1))
				c := 1 / math.Sqrt(t*t+1)
				s := t * c
				rotate(w, v, p, q, c, s)
			}
		}
	}
	vals = make(Vec, n)
	for i := 0; i < n; i++ {
		vals[i] = w.At(i, i)
	}
	// Sort eigenpairs by descending eigenvalue.
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	for i := 0; i < n; i++ {
		best := i
		for j := i + 1; j < n; j++ {
			if vals[order[j]] > vals[order[best]] {
				best = j
			}
		}
		order[i], order[best] = order[best], order[i]
	}
	sortedVals := make(Vec, n)
	sortedVecs := NewMat(n, n)
	for k, idx := range order {
		sortedVals[k] = vals[idx]
		for i := 0; i < n; i++ {
			sortedVecs.Set(i, k, v.At(i, idx))
		}
	}
	return sortedVals, sortedVecs
}

// rotate applies a Jacobi rotation in the (p, q) plane to w and accumulates
// it into the eigenvector matrix v.
func rotate(w, v *Mat, p, q int, c, s float64) {
	n := w.Rows
	for i := 0; i < n; i++ {
		wip, wiq := w.At(i, p), w.At(i, q)
		w.Set(i, p, c*wip-s*wiq)
		w.Set(i, q, s*wip+c*wiq)
	}
	for j := 0; j < n; j++ {
		wpj, wqj := w.At(p, j), w.At(q, j)
		w.Set(p, j, c*wpj-s*wqj)
		w.Set(q, j, s*wpj+c*wqj)
	}
	for i := 0; i < n; i++ {
		vip, viq := v.At(i, p), v.At(i, q)
		v.Set(i, p, c*vip-s*viq)
		v.Set(i, q, s*vip+c*viq)
	}
}

// PCA computes the top-k principal directions of the rows. It returns the
// data mean and a k×d projection matrix whose rows are the orthonormal
// principal directions with largest variance.
func PCA(rows []Vec, k int) (mean Vec, proj *Mat) {
	d := len(rows[0])
	if k > d {
		k = d
	}
	cov := Covariance(rows)
	_, vecs := EigenSym(cov, 0)
	mean = Mean(rows)
	proj = NewMat(k, d)
	for r := 0; r < k; r++ {
		col := vecs.Col(r)
		copy(proj.Row(r), col)
	}
	return mean, proj
}
