package vector

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDotSubNorm(t *testing.T) {
	a := Vec{1, 2, 3}
	b := Vec{4, 5, 6}
	if got := a.Dot(b); got != 32 {
		t.Errorf("dot = %v", got)
	}
	if got := a.Sub(b); got[0] != -3 || got[1] != -3 || got[2] != -3 {
		t.Errorf("sub = %v", got)
	}
	if got := (Vec{3, 4}).Norm(); got != 5 {
		t.Errorf("norm = %v", got)
	}
	if got := a.Dist(b); math.Abs(got-math.Sqrt(27)) > 1e-12 {
		t.Errorf("dist = %v", got)
	}
	if got := a.Dist2(b); got != 27 {
		t.Errorf("dist2 = %v", got)
	}
}

func TestDistProperties(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := 1 + rng.Intn(20)
		a, b, c := randVec(rng, d), randVec(rng, d), randVec(rng, d)
		if math.Abs(a.Dist(b)-b.Dist(a)) > 1e-9 {
			return false
		}
		if a.Dist(a) > 1e-12 {
			return false
		}
		return a.Dist(c) <= a.Dist(b)+b.Dist(c)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func randVec(rng *rand.Rand, d int) Vec {
	v := make(Vec, d)
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	return v
}

func TestMeanCovariance(t *testing.T) {
	rows := []Vec{{1, 2}, {3, 4}, {5, 6}}
	m := Mean(rows)
	if m[0] != 3 || m[1] != 4 {
		t.Fatalf("mean = %v", m)
	}
	cov := Covariance(rows)
	// Var of {1,3,5} = 4; covariance with {2,4,6} also 4.
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			if math.Abs(cov.At(i, j)-4) > 1e-12 {
				t.Fatalf("cov(%d,%d) = %v", i, j, cov.At(i, j))
			}
		}
	}
}

func TestEigenSymDiagonal(t *testing.T) {
	a := NewMat(3, 3)
	a.Set(0, 0, 1)
	a.Set(1, 1, 5)
	a.Set(2, 2, 3)
	vals, vecs := EigenSym(a, 0)
	want := []float64{5, 3, 1}
	for i, w := range want {
		if math.Abs(vals[i]-w) > 1e-9 {
			t.Fatalf("vals = %v", vals)
		}
	}
	// Eigenvector columns should be signed basis vectors.
	for k, dim := range []int{1, 2, 0} {
		col := vecs.Col(k)
		if math.Abs(math.Abs(col[dim])-1) > 1e-9 {
			t.Fatalf("vec %d = %v", k, col)
		}
	}
}

func TestEigenSymReconstruction(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 20; trial++ {
		n := 2 + rng.Intn(6)
		a := NewMat(n, n)
		for i := 0; i < n; i++ {
			for j := i; j < n; j++ {
				v := rng.NormFloat64()
				a.Set(i, j, v)
				a.Set(j, i, v)
			}
		}
		vals, vecs := EigenSym(a, 0)
		// Check A v_k = λ_k v_k and orthonormality.
		for k := 0; k < n; k++ {
			v := vecs.Col(k)
			av := a.MulVec(v)
			for i := 0; i < n; i++ {
				if math.Abs(av[i]-vals[k]*v[i]) > 1e-7 {
					t.Fatalf("A v != λ v at trial %d k=%d i=%d: %v vs %v", trial, k, i, av[i], vals[k]*v[i])
				}
			}
			for l := 0; l < n; l++ {
				dot := v.Dot(vecs.Col(l))
				want := 0.0
				if l == k {
					want = 1
				}
				if math.Abs(dot-want) > 1e-7 {
					t.Fatalf("not orthonormal: <v%d,v%d>=%v", k, l, dot)
				}
			}
		}
		// Eigenvalues descending.
		for k := 1; k < n; k++ {
			if vals[k] > vals[k-1]+1e-9 {
				t.Fatalf("vals not sorted: %v", vals)
			}
		}
	}
}

func TestTopKMatchesJacobi(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	for trial := 0; trial < 10; trial++ {
		n := 4 + rng.Intn(5)
		// Build a PSD matrix B Bᵀ.
		b := NewMat(n, n)
		for i := range b.Data {
			b.Data[i] = rng.NormFloat64()
		}
		a := NewMat(n, n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				s := 0.0
				for k := 0; k < n; k++ {
					s += b.At(i, k) * b.At(j, k)
				}
				a.Set(i, j, s)
			}
		}
		jvals, _ := EigenSym(a, 0)
		k := 2
		pvals, pvecs := TopKEigenSym(a, k, 500)
		for i := 0; i < k; i++ {
			rel := math.Abs(pvals[i]-jvals[i]) / math.Max(1e-9, math.Abs(jvals[i]))
			if rel > 1e-3 {
				t.Fatalf("trial %d eigenvalue %d: power=%v jacobi=%v", trial, i, pvals[i], jvals[i])
			}
			v := Vec(pvecs.Row(i))
			if math.Abs(v.Norm()-1) > 1e-6 {
				t.Fatalf("eigenvector %d not unit", i)
			}
		}
	}
}

func TestPCAVariance(t *testing.T) {
	// Data stretched along one axis: PCA's first direction should align
	// with it.
	rng := rand.New(rand.NewSource(33))
	rows := make([]Vec, 500)
	for i := range rows {
		rows[i] = Vec{rng.NormFloat64() * 10, rng.NormFloat64(), rng.NormFloat64() * 0.1}
	}
	_, proj := PCA(rows, 2)
	first := Vec(proj.Row(0))
	if math.Abs(math.Abs(first[0])-1) > 0.05 {
		t.Errorf("first PC should align with axis 0: %v", first)
	}
	_, projP := PCATopK(rows, 2, 200)
	firstP := Vec(projP.Row(0))
	if math.Abs(math.Abs(firstP[0])-1) > 0.05 {
		t.Errorf("power-iteration first PC should align with axis 0: %v", firstP)
	}
}

func TestMatMulVec(t *testing.T) {
	m := NewMat(2, 3)
	copy(m.Data, []float64{1, 2, 3, 4, 5, 6})
	got := m.MulVec(Vec{1, 1, 1})
	if got[0] != 6 || got[1] != 15 {
		t.Errorf("mulvec = %v", got)
	}
}
