package wire

import (
	"encoding/binary"

	"haindex/internal/bitvec"
)

// The version-3 mutation frames. A mutable shard server (internal/lsm
// behind internal/server) answers InsertReq/DeleteReq/SealReq; an immutable
// server refuses them with MsgError. All three responses carry the shard's
// structural epoch so a client can observe when its writes caused a seal or
// compaction swap.

// InsertReq is a batch of upserts: each (id, code) pair replaces any live
// tuple with the same id, wherever it sits in the LSM layering.
type InsertReq struct {
	Length int
	IDs    []int
	Codes  []bitvec.Code
}

func (m InsertReq) Append(dst []byte) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(m.IDs)))
	for i, id := range m.IDs {
		dst = binary.AppendUvarint(dst, uint64(id))
		dst = m.Codes[i].AppendBytes(dst)
	}
	return dst
}

// ParseInsertReq decodes a batch whose codes have the session's length.
func ParseInsertReq(payload []byte, length int) (InsertReq, error) {
	p := &buf{b: payload}
	m := InsertReq{Length: length}
	n := p.count(1 + bitvec.EncodedLen(length))
	for i := 0; i < n && p.err == nil; i++ {
		m.IDs = append(m.IDs, p.intv())
		m.Codes = append(m.Codes, p.code(length))
	}
	return m, p.done()
}

// InsertResp acknowledges a batch of upserts.
type InsertResp struct {
	Upserts      int // pairs applied (the whole batch, inserts are total)
	Replaced     int // pairs that superseded an older live version
	MemtableSize int
	Epoch        uint64
}

func (m InsertResp) Append(dst []byte) []byte {
	dst = binary.AppendUvarint(dst, uint64(m.Upserts))
	dst = binary.AppendUvarint(dst, uint64(m.Replaced))
	dst = binary.AppendUvarint(dst, uint64(m.MemtableSize))
	return binary.AppendUvarint(dst, m.Epoch)
}

func ParseInsertResp(payload []byte) (InsertResp, error) {
	p := &buf{b: payload}
	m := InsertResp{
		Upserts:      p.intv(),
		Replaced:     p.intv(),
		MemtableSize: p.intv(),
		Epoch:        p.uvarint(),
	}
	return m, p.done()
}

// DeleteReq is a batch of deletes by tuple id.
type DeleteReq struct {
	IDs []int
}

func (m DeleteReq) Append(dst []byte) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(m.IDs)))
	for _, id := range m.IDs {
		dst = binary.AppendUvarint(dst, uint64(id))
	}
	return dst
}

func ParseDeleteReq(payload []byte) (DeleteReq, error) {
	p := &buf{b: payload}
	n := p.count(1)
	m := DeleteReq{}
	for i := 0; i < n && p.err == nil; i++ {
		m.IDs = append(m.IDs, p.intv())
	}
	return m, p.done()
}

// DeleteResp acknowledges a batch of deletes.
type DeleteResp struct {
	Deleted int // ids that were live on this shard
	Epoch   uint64
}

func (m DeleteResp) Append(dst []byte) []byte {
	dst = binary.AppendUvarint(dst, uint64(m.Deleted))
	return binary.AppendUvarint(dst, m.Epoch)
}

func ParseDeleteResp(payload []byte) (DeleteResp, error) {
	p := &buf{b: payload}
	m := DeleteResp{
		Deleted: p.intv(),
		Epoch:   p.uvarint(),
	}
	return m, p.done()
}

// SealReq asks the shard to freeze its memtable into a segment now, and
// optionally compact the segment stack afterwards. The server answers after
// the structural change is live, so SealOK is a durability barrier for
// every previously-acknowledged mutation on this connection.
type SealReq struct {
	Compact bool
}

func (m SealReq) Append(dst []byte) []byte {
	v := uint64(0)
	if m.Compact {
		v = 1
	}
	return binary.AppendUvarint(dst, v)
}

func ParseSealReq(payload []byte) (SealReq, error) {
	p := &buf{b: payload}
	m := SealReq{Compact: p.uvarint() != 0}
	return m, p.done()
}

// SealOK reports the shard layering after the seal (and compaction).
type SealOK struct {
	Segments     int
	MemtableSize int
	Tombstones   int
	Epoch        uint64
}

func (m SealOK) Append(dst []byte) []byte {
	dst = binary.AppendUvarint(dst, uint64(m.Segments))
	dst = binary.AppendUvarint(dst, uint64(m.MemtableSize))
	dst = binary.AppendUvarint(dst, uint64(m.Tombstones))
	return binary.AppendUvarint(dst, m.Epoch)
}

func ParseSealOK(payload []byte) (SealOK, error) {
	p := &buf{b: payload}
	m := SealOK{
		Segments:     p.intv(),
		MemtableSize: p.intv(),
		Tombstones:   p.intv(),
		Epoch:        p.uvarint(),
	}
	return m, p.done()
}
