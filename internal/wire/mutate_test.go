package wire

import (
	"math/rand"
	"testing"
)

func TestMutateMessageRoundTrips(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, bits := range []int{16, 64, 100} {
		codes := randCodes(rng, 5, bits)
		ins := InsertReq{Length: bits, IDs: []int{0, 7, 900000, 3, 12}, Codes: codes}
		gotIns, err := ParseInsertReq(ins.Append(nil), bits)
		if err != nil {
			t.Fatal(err)
		}
		if len(gotIns.IDs) != 5 || gotIns.IDs[2] != 900000 {
			t.Fatalf("insert req: %+v", gotIns)
		}
		for i := range codes {
			if !gotIns.Codes[i].Equal(codes[i]) {
				t.Fatalf("insert code %d mismatch", i)
			}
		}
	}

	ir := InsertResp{Upserts: 5, Replaced: 2, MemtableSize: 41, Epoch: 9}
	if got, err := ParseInsertResp(ir.Append(nil)); err != nil || got != ir {
		t.Fatalf("insert resp: %+v err %v", got, err)
	}

	dr := DeleteReq{IDs: []int{3, 1, 4, 1, 5}}
	gotDr, err := ParseDeleteReq(dr.Append(nil))
	if err != nil || len(gotDr.IDs) != 5 || gotDr.IDs[4] != 5 {
		t.Fatalf("delete req: %+v err %v", gotDr, err)
	}

	dresp := DeleteResp{Deleted: 3, Epoch: 12}
	if got, err := ParseDeleteResp(dresp.Append(nil)); err != nil || got != dresp {
		t.Fatalf("delete resp: %+v err %v", got, err)
	}

	for _, compact := range []bool{false, true} {
		sr := SealReq{Compact: compact}
		if got, err := ParseSealReq(sr.Append(nil)); err != nil || got != sr {
			t.Fatalf("seal req: %+v err %v", got, err)
		}
	}

	sok := SealOK{Segments: 2, MemtableSize: 0, Tombstones: 7, Epoch: 33}
	if got, err := ParseSealOK(sok.Append(nil)); err != nil || got != sok {
		t.Fatalf("seal ok: %+v err %v", got, err)
	}
}

func TestMutateParseErrorPaths(t *testing.T) {
	cases := []struct {
		name  string
		parse func([]byte) error
		data  []byte
	}{
		{"insert-req hostile count", func(b []byte) error { _, err := ParseInsertReq(b, 64); return err },
			[]byte{0xff, 0xff, 0xff, 0xff, 0x7f}},
		{"insert-req short code", func(b []byte) error { _, err := ParseInsertReq(b, 64); return err },
			[]byte{1, 7, 0xAA, 0xBB}},
		{"insert-resp truncated", func(b []byte) error { _, err := ParseInsertResp(b); return err },
			[]byte{5, 2}},
		{"insert-resp trailing", func(b []byte) error { _, err := ParseInsertResp(b); return err },
			[]byte{5, 2, 1, 9, 77}},
		{"delete-req hostile count", func(b []byte) error { _, err := ParseDeleteReq(b); return err },
			[]byte{0xff, 0xff, 0xff, 0xff, 0x7f}},
		{"delete-resp empty", func(b []byte) error { _, err := ParseDeleteResp(b); return err }, nil},
		{"seal-req empty", func(b []byte) error { _, err := ParseSealReq(b); return err }, nil},
		{"seal-req trailing", func(b []byte) error { _, err := ParseSealReq(b); return err }, []byte{1, 1}},
		{"seal-ok truncated", func(b []byte) error { _, err := ParseSealOK(b); return err }, []byte{2, 0}},
	}
	for _, tc := range cases {
		if err := tc.parse(tc.data); err == nil {
			t.Errorf("%s: corrupt payload accepted", tc.name)
		}
	}
}

// FuzzParseMutationFrames hammers the v3 mutation decoders with arbitrary
// bytes: they must never panic or over-allocate, and anything they accept
// must re-encode to a payload they accept again (decode/encode round-trip
// stability). make fuzz-wire runs this for a short smoke burst.
func FuzzParseMutationFrames(f *testing.F) {
	rng := rand.New(rand.NewSource(3))
	ins := InsertReq{Length: 32, IDs: []int{1, 2}, Codes: randCodes(rng, 2, 32)}
	f.Add(uint8(0), ins.Append(nil))
	f.Add(uint8(1), InsertResp{Upserts: 2, Replaced: 1, MemtableSize: 7, Epoch: 3}.Append(nil))
	f.Add(uint8(2), DeleteReq{IDs: []int{5, 6, 7}}.Append(nil))
	f.Add(uint8(3), DeleteResp{Deleted: 1, Epoch: 4}.Append(nil))
	f.Add(uint8(4), SealReq{Compact: true}.Append(nil))
	f.Add(uint8(5), SealOK{Segments: 1, Tombstones: 2, Epoch: 5}.Append(nil))
	f.Fuzz(func(t *testing.T, kind uint8, data []byte) {
		switch kind % 6 {
		case 0:
			if m, err := ParseInsertReq(data, 32); err == nil {
				if _, err := ParseInsertReq(m.Append(nil), 32); err != nil {
					t.Fatalf("re-encoded InsertReq rejected: %v", err)
				}
			}
		case 1:
			if m, err := ParseInsertResp(data); err == nil {
				if got, err := ParseInsertResp(m.Append(nil)); err != nil || got != m {
					t.Fatalf("InsertResp not round-trip stable: %+v vs %+v (%v)", got, m, err)
				}
			}
		case 2:
			if m, err := ParseDeleteReq(data); err == nil {
				if _, err := ParseDeleteReq(m.Append(nil)); err != nil {
					t.Fatalf("re-encoded DeleteReq rejected: %v", err)
				}
			}
		case 3:
			if m, err := ParseDeleteResp(data); err == nil {
				if got, err := ParseDeleteResp(m.Append(nil)); err != nil || got != m {
					t.Fatalf("DeleteResp not round-trip stable: %+v vs %+v (%v)", got, m, err)
				}
			}
		case 4:
			if m, err := ParseSealReq(data); err == nil {
				if got, err := ParseSealReq(m.Append(nil)); err != nil || got != m {
					t.Fatalf("SealReq not round-trip stable: %+v vs %+v (%v)", got, m, err)
				}
			}
		case 5:
			if m, err := ParseSealOK(data); err == nil {
				if got, err := ParseSealOK(m.Append(nil)); err != nil || got != m {
					t.Fatalf("SealOK not round-trip stable: %+v vs %+v (%v)", got, m, err)
				}
			}
		}
	})
}
