package wire

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"

	"haindex/internal/bitvec"
	"haindex/internal/core"
	"haindex/internal/mih"
)

// Shard snapshot format: the unit haidx emits per Gray partition and haserve
// loads at startup. A snapshot is self-describing — it carries the full
// pivot list and its own partition id, so a server can report the cluster
// routing table in its handshake and a router can verify that the shards it
// dialed belong to one consistent partitioning.
//
// Layout:
//
//	magic "HASN" | version | part | parts | code length L | pivot count |
//	pivots (fixed-width codes) | embedded HADX index (core codec, to EOF)
//
// A version-4 snapshot inserts one pad-length byte plus 0–7 zero bytes
// between the pivots and the embedded index, so the HADX v4 arena starts at
// an 8-aligned file offset and MapSnapshotFile can alias its slabs straight
// out of an mmap of the snapshot file.

const (
	snapshotMagic         = "HASN"
	snapshotVersion       = 1 // embedded index is the v1 pointer encoding
	snapshotVersionFrozen = 2 // embedded index is the v2 frozen arena encoding
	snapshotVersionMIH    = 3 // embedded index is the v3 MIH arena encoding
	snapshotVersionArena  = 4 // embedded index is the 8-aligned v4 mmap arena
)

// SnapshotMeta is the shard header of a snapshot file.
type SnapshotMeta struct {
	Part   int // this shard's partition id in [0, Parts)
	Parts  int // total partitions in the deployment
	Length int // code length in bits
	Pivots []bitvec.Code
}

func (m SnapshotMeta) validate() error {
	if m.Parts <= 0 || m.Part < 0 || m.Part >= m.Parts {
		return fmt.Errorf("wire: snapshot partition %d of %d out of range", m.Part, m.Parts)
	}
	if m.Parts != len(m.Pivots)+1 {
		return fmt.Errorf("wire: snapshot has %d partitions but %d pivots", m.Parts, len(m.Pivots))
	}
	if m.Length <= 0 || m.Length > 1<<20 {
		return fmt.Errorf("wire: implausible snapshot code length %d", m.Length)
	}
	for _, p := range m.Pivots {
		if p.Len() != m.Length {
			return fmt.Errorf("wire: snapshot pivot length %d != code length %d", p.Len(), m.Length)
		}
	}
	return nil
}

// WriteSnapshot writes the shard header followed by the encoded index
// (always with id tables — a serving shard must return ids). A pointer
// index produces a version-1 snapshot, a frozen one version 2 — unless it is
// in arena form (decoded from or streamed into the v4 layout, whose
// scattered roots v2 cannot represent), which produces version 4 — so
// readers and tooling know the embedded layout from the header alone.
func WriteSnapshot(w io.Writer, meta SnapshotMeta, idx core.Index) error {
	if fi, ok := idx.(*core.FrozenIndex); ok && fi.ArenaForm() {
		return WriteSnapshotArena(w, meta, fi)
	}
	if err := meta.validate(); err != nil {
		return err
	}
	if idx.Length() != meta.Length {
		return fmt.Errorf("wire: snapshot index is %d-bit, header says %d", idx.Length(), meta.Length)
	}
	version := uint64(snapshotVersion)
	var encode func(io.Writer) error
	if ei, ok := idx.(*core.EngineIndex); ok {
		// Unwrap the adapter so the engine's own codec section is embedded.
		switch t := ei.Engine().(type) {
		case *mih.Index:
			version = snapshotVersionMIH
			encode = func(w io.Writer) error { return t.Encode(w, true) }
		default:
			return fmt.Errorf("wire: cannot snapshot engine type %T", ei.Engine())
		}
	} else {
		switch t := idx.(type) {
		case *core.DynamicIndex:
			encode = func(w io.Writer) error { return t.Encode(w, true) }
		case *core.FrozenIndex:
			version = snapshotVersionFrozen
			encode = func(w io.Writer) error { return t.Encode(w, true) }
		default:
			return fmt.Errorf("wire: cannot snapshot index type %T", idx)
		}
	}
	if _, err := writeSnapshotHeader(w, version, meta); err != nil {
		return err
	}
	return encode(w)
}

// WriteSnapshotArena writes a version-4 snapshot: the frozen index embedded
// in the HADX v4 mmap-native layout at an 8-aligned file offset, so the file
// can later be served zero-copy via MapSnapshotFile. Any frozen index can be
// written this way, not just one already in arena form.
func WriteSnapshotArena(w io.Writer, meta SnapshotMeta, f *core.FrozenIndex) error {
	if err := meta.validate(); err != nil {
		return err
	}
	if f.Length() != meta.Length {
		return fmt.Errorf("wire: snapshot index is %d-bit, header says %d", f.Length(), meta.Length)
	}
	n, err := writeSnapshotHeader(w, snapshotVersionArena, meta)
	if err != nil {
		return err
	}
	if err := writeArenaPad(w, n); err != nil {
		return err
	}
	return f.EncodeArena(w, true)
}

// WriteSnapshotStream writes a version-4 snapshot whose arena comes from a
// core.FrozenStreamWriter: the shard header and alignment pad are emitted,
// then the stream is finished directly onto w. The snapshot is assembled
// without the index ever being resident — peak memory is the stream's chunk
// size — which is how a reducer emits a serving-ready shard for a partition
// far larger than RAM. The writer is consumed; it must not be used after.
func WriteSnapshotStream(w io.Writer, meta SnapshotMeta, sw *core.FrozenStreamWriter) error {
	if err := meta.validate(); err != nil {
		return err
	}
	if sw.Length() != meta.Length {
		return fmt.Errorf("wire: snapshot stream is %d-bit, header says %d", sw.Length(), meta.Length)
	}
	n, err := writeSnapshotHeader(w, snapshotVersionArena, meta)
	if err != nil {
		return err
	}
	if err := writeArenaPad(w, n); err != nil {
		return err
	}
	return sw.Finish(w)
}

// writeSnapshotHeader emits the HASN magic, version, and shard metadata,
// returning the number of bytes written.
func writeSnapshotHeader(w io.Writer, version uint64, meta SnapshotMeta) (int64, error) {
	var cw countingWriter
	bw := bufio.NewWriter(io.MultiWriter(w, &cw))
	if _, err := bw.WriteString(snapshotMagic); err != nil {
		return 0, err
	}
	var buf [binary.MaxVarintLen64]byte
	putU := func(v uint64) error {
		n := binary.PutUvarint(buf[:], v)
		_, err := bw.Write(buf[:n])
		return err
	}
	for _, v := range []uint64{version, uint64(meta.Part), uint64(meta.Parts), uint64(meta.Length), uint64(len(meta.Pivots))} {
		if err := putU(v); err != nil {
			return 0, err
		}
	}
	scratch := make([]byte, 0, bitvec.EncodedLen(meta.Length))
	for _, p := range meta.Pivots {
		if _, err := bw.Write(p.AppendBytes(scratch[:0])); err != nil {
			return 0, err
		}
	}
	if err := bw.Flush(); err != nil {
		return 0, err
	}
	return int64(cw), nil
}

// writeArenaPad writes the pad-length byte and padding that bring a file at
// offset n up to the next 8-aligned offset (counting the pad byte itself).
func writeArenaPad(w io.Writer, n int64) error {
	padLen := byte((8 - (n+1)%8) % 8)
	pad := make([]byte, 1+padLen)
	pad[0] = padLen
	_, err := w.Write(pad)
	return err
}

type countingWriter int64

func (c *countingWriter) Write(p []byte) (int, error) {
	*c += countingWriter(len(p))
	return len(p), nil
}

// readSnapshotHeader parses the HASN magic, version, and shard metadata.
func readSnapshotHeader(br *bufio.Reader) (SnapshotMeta, uint64, error) {
	var meta SnapshotMeta
	magic := make([]byte, len(snapshotMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return meta, 0, fmt.Errorf("wire: reading snapshot magic: %w", err)
	}
	if string(magic) != snapshotMagic {
		return meta, 0, fmt.Errorf("wire: bad snapshot magic %q", magic)
	}
	readU := func() (uint64, error) { return binary.ReadUvarint(br) }
	version, err := readU()
	if err != nil {
		return meta, 0, err
	}
	if version < snapshotVersion || version > snapshotVersionArena {
		return meta, 0, fmt.Errorf("wire: unsupported snapshot version %d", version)
	}
	var part, parts, length, npiv uint64
	for _, dst := range []*uint64{&part, &parts, &length, &npiv} {
		if *dst, err = readU(); err != nil {
			return meta, 0, err
		}
	}
	meta.Part, meta.Parts, meta.Length = int(part), int(parts), int(length)
	if meta.Length <= 0 || meta.Length > 1<<20 {
		return meta, 0, fmt.Errorf("wire: implausible snapshot code length %d", meta.Length)
	}
	if npiv > uint64(meta.Parts) {
		return meta, 0, fmt.Errorf("wire: snapshot pivot count %d exceeds partitions %d", npiv, meta.Parts)
	}
	codeBytes := make([]byte, bitvec.EncodedLen(meta.Length))
	for i := uint64(0); i < npiv; i++ {
		if _, err := io.ReadFull(br, codeBytes); err != nil {
			return meta, 0, fmt.Errorf("wire: reading snapshot pivot %d: %w", i, err)
		}
		c, _, err := bitvec.CodeFromBytes(codeBytes, meta.Length)
		if err != nil {
			return meta, 0, err
		}
		meta.Pivots = append(meta.Pivots, c)
	}
	if err := meta.validate(); err != nil {
		return meta, 0, err
	}
	return meta, version, nil
}

// skipArenaPad consumes the version-4 pad-length byte and its padding.
func skipArenaPad(br *bufio.Reader) error {
	padLen, err := br.ReadByte()
	if err != nil {
		return fmt.Errorf("wire: reading snapshot pad: %w", err)
	}
	if padLen > 7 {
		return fmt.Errorf("wire: snapshot pad length %d out of range", padLen)
	}
	if _, err := io.CopyN(io.Discard, br, int64(padLen)); err != nil {
		return fmt.Errorf("wire: skipping snapshot pad: %w", err)
	}
	return nil
}

// ReadSnapshot parses a snapshot: header then embedded index. A version-1
// snapshot yields a *core.DynamicIndex, a version-2 one a *core.FrozenIndex
// decoded near-single-copy into its arena, a version-4 one a *core.FrozenIndex
// decoded eagerly from the mmap-native layout (use MapSnapshotFile for the
// zero-copy load). Corrupt input returns an error, never panics.
func ReadSnapshot(r io.Reader) (SnapshotMeta, core.Index, error) {
	br := bufio.NewReader(r)
	meta, version, err := readSnapshotHeader(br)
	if err != nil {
		return meta, nil, err
	}
	if version == snapshotVersionArena {
		if err := skipArenaPad(br); err != nil {
			return meta, nil, err
		}
	}
	idx, err := core.DecodeIndex(br)
	if err != nil {
		return meta, nil, fmt.Errorf("wire: snapshot index: %w", err)
	}
	// The header version must agree with the embedded index's actual type
	// and layout, so a spliced snapshot cannot masquerade as a different one.
	ok := false
	switch t := idx.(type) {
	case *core.DynamicIndex:
		ok = version == snapshotVersion
	case *core.FrozenIndex:
		if t.ArenaForm() {
			ok = version == snapshotVersionArena
		} else {
			ok = version == snapshotVersionFrozen
		}
	case *core.EngineIndex:
		_, isMIH := t.Engine().(*mih.Index)
		ok = isMIH && version == snapshotVersionMIH
	}
	if !ok {
		return meta, nil, fmt.Errorf("wire: snapshot version %d embeds index type %T", version, idx)
	}
	if idx.Length() != meta.Length {
		return meta, nil, fmt.Errorf("wire: snapshot index is %d-bit, header says %d", idx.Length(), meta.Length)
	}
	return meta, idx, nil
}

// ReadSnapshotFile loads a snapshot from disk.
func ReadSnapshotFile(path string) (SnapshotMeta, core.Index, error) {
	f, err := os.Open(path)
	if err != nil {
		return SnapshotMeta{}, nil, err
	}
	defer f.Close()
	return ReadSnapshot(f)
}

// countingReader tracks how many bytes have been pulled from the underlying
// reader; combined with bufio.Reader.Buffered it recovers exact file offsets.
type countingReader struct {
	r io.Reader
	n int64
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}

// MapSnapshotFile loads a version-4 snapshot zero-copy: the header is parsed
// eagerly (it is tiny) and the embedded arena is aliased straight out of an
// mmap of the file, so load time and heap footprint are independent of the
// shard's size. The returned index must be Closed to release the mapping.
// Snapshots in any other version return an error — callers fall back to
// ReadSnapshotFile (downward negotiation), so serving works against old
// snapshot files unchanged.
func MapSnapshotFile(path string) (SnapshotMeta, *core.FrozenIndex, error) {
	f, err := os.Open(path)
	if err != nil {
		return SnapshotMeta{}, nil, err
	}
	defer f.Close()
	cr := &countingReader{r: f}
	br := bufio.NewReader(cr)
	meta, version, err := readSnapshotHeader(br)
	if err != nil {
		return meta, nil, err
	}
	if version != snapshotVersionArena {
		return meta, nil, fmt.Errorf("wire: snapshot version %d has no mmap form", version)
	}
	if err := skipArenaPad(br); err != nil {
		return meta, nil, err
	}
	off := cr.n - int64(br.Buffered())
	if off%8 != 0 {
		return meta, nil, fmt.Errorf("wire: snapshot arena at unaligned offset %d", off)
	}
	idx, err := core.MapFrozenAt(path, off)
	if err != nil {
		return meta, nil, err
	}
	if idx.Length() != meta.Length {
		idx.Close()
		return meta, nil, fmt.Errorf("wire: snapshot index is %d-bit, header says %d", idx.Length(), meta.Length)
	}
	return meta, idx, nil
}
