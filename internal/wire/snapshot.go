package wire

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"

	"haindex/internal/bitvec"
	"haindex/internal/core"
	"haindex/internal/mih"
)

// Shard snapshot format: the unit haidx emits per Gray partition and haserve
// loads at startup. A snapshot is self-describing — it carries the full
// pivot list and its own partition id, so a server can report the cluster
// routing table in its handshake and a router can verify that the shards it
// dialed belong to one consistent partitioning.
//
// Layout:
//
//	magic "HASN" | version | part | parts | code length L | pivot count |
//	pivots (fixed-width codes) | embedded HADX index (core codec, to EOF)

const (
	snapshotMagic         = "HASN"
	snapshotVersion       = 1 // embedded index is the v1 pointer encoding
	snapshotVersionFrozen = 2 // embedded index is the v2 frozen arena encoding
	snapshotVersionMIH    = 3 // embedded index is the v3 MIH arena encoding
)

// SnapshotMeta is the shard header of a snapshot file.
type SnapshotMeta struct {
	Part   int // this shard's partition id in [0, Parts)
	Parts  int // total partitions in the deployment
	Length int // code length in bits
	Pivots []bitvec.Code
}

func (m SnapshotMeta) validate() error {
	if m.Parts <= 0 || m.Part < 0 || m.Part >= m.Parts {
		return fmt.Errorf("wire: snapshot partition %d of %d out of range", m.Part, m.Parts)
	}
	if m.Parts != len(m.Pivots)+1 {
		return fmt.Errorf("wire: snapshot has %d partitions but %d pivots", m.Parts, len(m.Pivots))
	}
	if m.Length <= 0 || m.Length > 1<<20 {
		return fmt.Errorf("wire: implausible snapshot code length %d", m.Length)
	}
	for _, p := range m.Pivots {
		if p.Len() != m.Length {
			return fmt.Errorf("wire: snapshot pivot length %d != code length %d", p.Len(), m.Length)
		}
	}
	return nil
}

// WriteSnapshot writes the shard header followed by the encoded index
// (always with id tables — a serving shard must return ids). A pointer
// index produces a version-1 snapshot, a frozen one version 2, so readers
// and tooling know the embedded layout from the header alone.
func WriteSnapshot(w io.Writer, meta SnapshotMeta, idx core.Index) error {
	if err := meta.validate(); err != nil {
		return err
	}
	if idx.Length() != meta.Length {
		return fmt.Errorf("wire: snapshot index is %d-bit, header says %d", idx.Length(), meta.Length)
	}
	version := uint64(snapshotVersion)
	var encode func(io.Writer) error
	if ei, ok := idx.(*core.EngineIndex); ok {
		// Unwrap the adapter so the engine's own codec section is embedded.
		switch t := ei.Engine().(type) {
		case *mih.Index:
			version = snapshotVersionMIH
			encode = func(w io.Writer) error { return t.Encode(w, true) }
		default:
			return fmt.Errorf("wire: cannot snapshot engine type %T", ei.Engine())
		}
	} else {
		switch t := idx.(type) {
		case *core.DynamicIndex:
			encode = func(w io.Writer) error { return t.Encode(w, true) }
		case *core.FrozenIndex:
			version = snapshotVersionFrozen
			encode = func(w io.Writer) error { return t.Encode(w, true) }
		default:
			return fmt.Errorf("wire: cannot snapshot index type %T", idx)
		}
	}
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(snapshotMagic); err != nil {
		return err
	}
	var buf [binary.MaxVarintLen64]byte
	putU := func(v uint64) error {
		n := binary.PutUvarint(buf[:], v)
		_, err := bw.Write(buf[:n])
		return err
	}
	for _, v := range []uint64{version, uint64(meta.Part), uint64(meta.Parts), uint64(meta.Length), uint64(len(meta.Pivots))} {
		if err := putU(v); err != nil {
			return err
		}
	}
	scratch := make([]byte, 0, bitvec.EncodedLen(meta.Length))
	for _, p := range meta.Pivots {
		if _, err := bw.Write(p.AppendBytes(scratch[:0])); err != nil {
			return err
		}
	}
	if err := bw.Flush(); err != nil {
		return err
	}
	return encode(w)
}

// ReadSnapshot parses a snapshot: header then embedded index. A version-1
// snapshot yields a *core.DynamicIndex, a version-2 one a *core.FrozenIndex
// decoded near-single-copy into its arena. Corrupt input returns an error,
// never panics.
func ReadSnapshot(r io.Reader) (SnapshotMeta, core.Index, error) {
	br := bufio.NewReader(r)
	var meta SnapshotMeta
	magic := make([]byte, len(snapshotMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return meta, nil, fmt.Errorf("wire: reading snapshot magic: %w", err)
	}
	if string(magic) != snapshotMagic {
		return meta, nil, fmt.Errorf("wire: bad snapshot magic %q", magic)
	}
	readU := func() (uint64, error) { return binary.ReadUvarint(br) }
	version, err := readU()
	if err != nil {
		return meta, nil, err
	}
	if version < snapshotVersion || version > snapshotVersionMIH {
		return meta, nil, fmt.Errorf("wire: unsupported snapshot version %d", version)
	}
	var part, parts, length, npiv uint64
	for _, dst := range []*uint64{&part, &parts, &length, &npiv} {
		if *dst, err = readU(); err != nil {
			return meta, nil, err
		}
	}
	meta.Part, meta.Parts, meta.Length = int(part), int(parts), int(length)
	if meta.Length <= 0 || meta.Length > 1<<20 {
		return meta, nil, fmt.Errorf("wire: implausible snapshot code length %d", meta.Length)
	}
	if npiv > uint64(meta.Parts) {
		return meta, nil, fmt.Errorf("wire: snapshot pivot count %d exceeds partitions %d", npiv, meta.Parts)
	}
	codeBytes := make([]byte, bitvec.EncodedLen(meta.Length))
	for i := uint64(0); i < npiv; i++ {
		if _, err := io.ReadFull(br, codeBytes); err != nil {
			return meta, nil, fmt.Errorf("wire: reading snapshot pivot %d: %w", i, err)
		}
		c, _, err := bitvec.CodeFromBytes(codeBytes, meta.Length)
		if err != nil {
			return meta, nil, err
		}
		meta.Pivots = append(meta.Pivots, c)
	}
	if err := meta.validate(); err != nil {
		return meta, nil, err
	}
	idx, err := core.DecodeIndex(br)
	if err != nil {
		return meta, nil, fmt.Errorf("wire: snapshot index: %w", err)
	}
	// The header version must agree with the embedded index's actual type, so
	// a spliced snapshot cannot masquerade as a different layout.
	ok := false
	switch t := idx.(type) {
	case *core.DynamicIndex:
		ok = version == snapshotVersion
	case *core.FrozenIndex:
		ok = version == snapshotVersionFrozen
	case *core.EngineIndex:
		_, isMIH := t.Engine().(*mih.Index)
		ok = isMIH && version == snapshotVersionMIH
	}
	if !ok {
		return meta, nil, fmt.Errorf("wire: snapshot version %d embeds index type %T", version, idx)
	}
	if idx.Length() != meta.Length {
		return meta, nil, fmt.Errorf("wire: snapshot index is %d-bit, header says %d", idx.Length(), meta.Length)
	}
	return meta, idx, nil
}

// ReadSnapshotFile loads a snapshot from disk.
func ReadSnapshotFile(path string) (SnapshotMeta, core.Index, error) {
	f, err := os.Open(path)
	if err != nil {
		return SnapshotMeta{}, nil, err
	}
	defer f.Close()
	return ReadSnapshot(f)
}
