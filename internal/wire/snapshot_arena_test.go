package wire

import (
	"bytes"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"haindex/internal/core"
)

// writeArenaSnapshot builds a frozen shard and writes it as a v4 snapshot
// file, returning the path and the source index.
func writeArenaSnapshot(t *testing.T, dir string) (string, SnapshotMeta, *core.FrozenIndex) {
	t.Helper()
	rng := rand.New(rand.NewSource(44))
	meta, idx, _ := buildSnapshot(t, rng, 64, 3)
	frozen := core.Freeze(idx)
	path := filepath.Join(dir, "shard.hasn")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteSnapshotArena(f, meta, frozen); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path, meta, frozen
}

// TestArenaSnapshotRoundTrip: a v4 snapshot reads back through both the
// eager ReadSnapshotFile and the zero-copy MapSnapshotFile, and both answer
// exactly like the source index.
func TestArenaSnapshotRoundTrip(t *testing.T) {
	path, meta, frozen := writeArenaSnapshot(t, t.TempDir())

	gotMeta, eagerIdx, err := ReadSnapshotFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if gotMeta.Part != meta.Part || gotMeta.Parts != meta.Parts || gotMeta.Length != meta.Length {
		t.Fatalf("meta: %+v vs %+v", gotMeta, meta)
	}
	for i := range meta.Pivots {
		if !gotMeta.Pivots[i].Equal(meta.Pivots[i]) {
			t.Fatalf("pivot %d mismatch", i)
		}
	}
	eager, ok := eagerIdx.(*core.FrozenIndex)
	if !ok || !eager.ArenaForm() {
		t.Fatalf("v4 snapshot decoded as %T", eagerIdx)
	}

	mapMeta, mapped, err := MapSnapshotFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer mapped.Close()
	if mapMeta.Part != meta.Part || mapMeta.Length != meta.Length {
		t.Fatalf("mapped meta: %+v vs %+v", mapMeta, meta)
	}

	esr, msr, osr := core.NewSearcher(eager), core.NewSearcher(mapped), core.NewSearcher(frozen)
	for _, q := range frozen.Codes()[:20] {
		want := append([]int(nil), osr.Search(q, 3)...)
		if got := esr.Search(q, 3); !sameIDs(got, want) {
			t.Fatalf("eager v4 answers %d ids, want %d", len(got), len(want))
		}
		if got := msr.Search(q, 3); !sameIDs(got, want) {
			t.Fatalf("mapped v4 answers %d ids, want %d", len(got), len(want))
		}
	}
}

// TestWriteSnapshotPicksArena: WriteSnapshot on an arena-form index emits a
// v4 snapshot (v2 cannot carry scattered roots), while a plain frozen index
// still writes v2 — and MapSnapshotFile refuses non-v4 files so callers fall
// back to the eager reader.
func TestWriteSnapshotPicksArena(t *testing.T) {
	rng := rand.New(rand.NewSource(45))
	meta, idx, _ := buildSnapshot(t, rng, 32, 4)
	frozen := core.Freeze(idx)

	// Round-trip through the arena codec to obtain an arena-form index.
	var arena bytes.Buffer
	if err := frozen.EncodeArena(&arena, true); err != nil {
		t.Fatal(err)
	}
	arenaIdx, err := core.DecodeArenaBytes(arena.Bytes(), false)
	if err != nil {
		t.Fatal(err)
	}

	var v4, v2 bytes.Buffer
	if err := WriteSnapshot(&v4, meta, arenaIdx); err != nil {
		t.Fatal(err)
	}
	if err := WriteSnapshot(&v2, meta, frozen); err != nil {
		t.Fatal(err)
	}
	if _, gotIdx, err := ReadSnapshot(bytes.NewReader(v4.Bytes())); err != nil {
		t.Fatalf("v4 via WriteSnapshot: %v", err)
	} else if fi, ok := gotIdx.(*core.FrozenIndex); !ok || !fi.ArenaForm() {
		t.Fatalf("arena-form index snapshot decoded as %T", gotIdx)
	}
	if _, gotIdx, err := ReadSnapshot(bytes.NewReader(v2.Bytes())); err != nil {
		t.Fatal(err)
	} else if fi, ok := gotIdx.(*core.FrozenIndex); !ok || fi.ArenaForm() {
		t.Fatalf("plain frozen snapshot decoded as %T arenaForm", gotIdx)
	}

	path := filepath.Join(t.TempDir(), "v2.hasn")
	if err := os.WriteFile(path, v2.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := MapSnapshotFile(path); err == nil {
		t.Fatal("MapSnapshotFile accepted a v2 snapshot")
	}
}

// TestArenaSnapshotCorrupt: splices and pad corruption must be rejected by
// both readers, never crash.
func TestArenaSnapshotCorrupt(t *testing.T) {
	dir := t.TempDir()
	path, _, _ := writeArenaSnapshot(t, dir)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	// Locate the embedded arena: it starts at the first 8-aligned offset
	// whose bytes are the HADX magic with version 4.
	arenaOff := -1
	for off := 8; off+8 < len(data); off += 8 {
		if string(data[off:off+4]) == "HADX" && data[off+4] == 4 {
			arenaOff = off
			break
		}
	}
	if arenaOff < 0 {
		t.Fatal("embedded arena not found")
	}

	// Splice: v4 header claiming an arena but embedding a v2 body.
	spliced := append([]byte(nil), data[:arenaOff]...)
	rng := rand.New(rand.NewSource(46))
	_, idx, _ := buildSnapshot(t, rng, 64, 3)
	var v2body bytes.Buffer
	if err := core.Freeze(idx).Encode(&v2body, true); err != nil {
		t.Fatal(err)
	}
	spliced = append(spliced, v2body.Bytes()...)
	if _, _, err := ReadSnapshot(bytes.NewReader(spliced)); err == nil {
		t.Error("v4 header over v2 body accepted")
	}

	// Deleting one byte just before the arena either breaks the pad chain or
	// leaves the arena misaligned — both readers must notice.
	shifted := append(append([]byte(nil), data[:arenaOff-1]...), data[arenaOff:]...)
	cases := [][]byte{
		data[:arenaOff-1],                     // truncated before the arena
		data[:len(data)-9],                    // truncated inside the arena
		shifted,                               // arena shifted off alignment
		corruptAt(data, arenaOff+4, 9),        // wrong embedded version
		append(data[:len(data):len(data)], 1), // trailing garbage breaks tight layout
	}
	for i, c := range cases {
		if _, _, err := ReadSnapshot(bytes.NewReader(c)); err == nil {
			t.Errorf("corrupt case %d accepted by ReadSnapshot", i)
		}
		bad := filepath.Join(dir, "bad.hasn")
		if err := os.WriteFile(bad, c, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, _, err := MapSnapshotFile(bad); err == nil {
			t.Errorf("corrupt case %d accepted by MapSnapshotFile", i)
		}
	}
}

func corruptAt(data []byte, off int, v byte) []byte {
	out := append([]byte(nil), data...)
	out[off] ^= v
	return out
}

func sameIDs(got, want []int) bool {
	if len(got) != len(want) {
		return false
	}
	seen := map[int]int{}
	for _, id := range got {
		seen[id]++
	}
	for _, id := range want {
		seen[id]--
		if seen[id] < 0 {
			return false
		}
	}
	return true
}
