package wire

import (
	"testing"
)

// fullStats has every field distinct and nonzero, so any mis-sliced or
// misordered encoding shows up as a wrong value, not a coincidental match.
func fullStats() StatsResp {
	return StatsResp{
		Requests:             101,
		Queries:              102,
		TopKQueries:          103,
		IDsReturned:          104,
		Errors:               105,
		FaultsInjected:       106,
		DistanceComputations: 107,
		NodesVisited:         108,
		LeavesChecked:        109,
		LatencyP50Ns:         201,
		LatencyP95Ns:         202,
		LatencyP99Ns:         203,
		LatencyMaxNs:         204,
		CacheEntries:         301,
		CacheHits:            302,
		CacheMisses:          303,
		AdmissionP50Ns:       304,
		PoolIdle:             305,
	}
}

// clampStats zeroes the field groups a session at the given version never
// sees — the expected parse of an AppendVersion(v) payload.
func clampStats(m StatsResp, version int) StatsResp {
	if version < 6 {
		m.CacheEntries, m.CacheHits, m.CacheMisses, m.AdmissionP50Ns, m.PoolIdle = 0, 0, 0, 0, 0
	}
	if version < 2 {
		m.LatencyP50Ns, m.LatencyP95Ns, m.LatencyP99Ns, m.LatencyMaxNs = 0, 0, 0, 0
	}
	return m
}

// TestStatsRespDowngrade pins the version-negotiated StatsResp layouts: a
// payload encoded for any negotiated version v in [1, Version] must parse
// without error, round-trip every field group v includes, and leave the
// newer groups zero. This is the downgrade contract the server's MsgStats
// handler relies on — older peers reject trailing bytes, so the groups must
// nest exactly.
func TestStatsRespDowngrade(t *testing.T) {
	st := fullStats()
	for v := 1; v <= Version; v++ {
		got, err := ParseStatsResp(st.AppendVersion(nil, v))
		if err != nil {
			t.Fatalf("version %d: %v", v, err)
		}
		if want := clampStats(st, v); got != want {
			t.Fatalf("version %d: parsed %+v, want %+v", v, got, want)
		}
	}
	// The nesting property itself: each version's payload is a prefix of the
	// next one's, so a newer parser never misreads an older server.
	for v := 1; v < Version; v++ {
		a, b := st.AppendVersion(nil, v), st.AppendVersion(nil, v+1)
		if len(a) > len(b) || string(b[:len(a)]) != string(a) {
			t.Fatalf("version %d payload is not a prefix of version %d", v, v+1)
		}
	}
	// AppendV1 and Append are the endpoints of the same family.
	if string(st.AppendV1(nil)) != string(st.AppendVersion(nil, 1)) {
		t.Fatal("AppendV1 disagrees with AppendVersion(1)")
	}
	if string(st.Append(nil)) != string(st.AppendVersion(nil, Version)) {
		t.Fatal("Append disagrees with AppendVersion(Version)")
	}
}

// TestStatsRespCorruptInputs: damaged payloads must fail softly with an
// error, never panic and never parse as a plausible snapshot.
func TestStatsRespCorruptInputs(t *testing.T) {
	full := fullStats().Append(nil)
	cases := []struct {
		name string
		b    []byte
	}{
		{"empty", nil},
		{"short base", full[:3]},
		{"truncated varint", append(append([]byte(nil), full[:9]...), 0x80)},
		{"trailing garbage varint", append(append([]byte(nil), full...), 0x80)},
		{"one extra field", append(append([]byte(nil), full...), 7)},
		{"mid-latency cut", fullStats().AppendVersion(nil, 2)[:10]},
		{"continuation-only", []byte{0x80, 0x80, 0x80}},
	}
	for _, tc := range cases {
		if _, err := ParseStatsResp(tc.b); err == nil {
			t.Fatalf("%s: corrupt payload parsed without error", tc.name)
		}
	}
}

// FuzzStatsRespDowngrade throws arbitrary bytes and all version-sliced
// encodings of them at the parser: it must never panic, and every payload
// the encoder can produce must re-encode to the identical bytes at the
// version that produced it.
func FuzzStatsRespDowngrade(f *testing.F) {
	f.Add(fullStats().Append(nil), 6)
	f.Add(fullStats().AppendVersion(nil, 1), 1)
	f.Add(fullStats().AppendVersion(nil, 2), 2)
	f.Add([]byte{0x80}, 3)
	f.Fuzz(func(t *testing.T, data []byte, version int) {
		m, err := ParseStatsResp(data)
		if err != nil {
			return
		}
		v := version
		if v < 1 {
			v = 1
		}
		if v > Version {
			v = Version
		}
		// Round trip at every negotiated level: parse must accept what
		// AppendVersion emits and recover exactly the clamped fields.
		got, err := ParseStatsResp(m.AppendVersion(nil, v))
		if err != nil {
			t.Fatalf("version %d re-parse: %v", v, err)
		}
		if want := clampStats(m, v); got != want {
			t.Fatalf("version %d: %+v, want %+v", v, got, want)
		}
	})
}
