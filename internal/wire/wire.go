// Package wire is the binary protocol between the haserve shard server and
// the haquery client router, plus the on-disk shard snapshot format both
// ends load. The conversation is length-prefixed frames over TCP:
//
//	frame   := length uint32 BE (type + payload) | type byte | payload
//	session := Hello -> HelloOK, then any number of
//	           Search -> SearchOK | TopK -> TopKOK | Stats -> StatsOK,
//	           any of which may instead answer Error.
//
// The protocol is versioned in the Hello exchange. Since version 3 the
// handshake negotiates downward: the server accepts any client version in
// [1, Version] and replies with min(client, server), and both sides gate
// newer frames on the negotiated version — so a rolling fleet upgrade keeps
// serving at the older feature level instead of partitioning the fleet. A
// client from the future (version above the server's) is still refused
// loudly at connect time. Payload integers are unsigned varints; binary
// codes travel fixed-width (bitvec.AppendBytes) since the code length is
// fixed per session by the handshake.
package wire

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"haindex/internal/bitvec"
)

// Version is the protocol version spoken by this build. Bump on any frame
// layout change. Version 2 extended StatsResp with search-latency
// percentiles; ParseStatsResp still accepts the shorter v1 payload, so the
// field is version-gated at the handshake, not the parser. Version 3 added
// the mutation frames (Insert/Delete/Seal) for the LSM serving tier and the
// downward-negotiating handshake. Version 4 added the optional engine hint
// trailing SearchReq — a client's escape hatch to pin one query batch to a
// specific search engine instead of the server's planner choice. Version 5
// added the optional priority class trailing SearchReq and the Shed
// response: an overloaded server may answer a search with MsgShed instead
// of queueing past its admission budget, and the client backs off and
// retries the same replica. Version 6 extended StatsResp with the warmth
// and load fields (result-cache occupancy and hit counters, admission-wait
// p50, idle admission tickets) the client router steers replica selection
// with; like the v2 latency fields they are optional trailing varints, but
// they are only emitted on sessions negotiated at 6 or above because older
// parsers reject trailing bytes.
const Version = 6

// Engine hints a SearchReq can carry since protocol version 4. EngineAuto
// (the zero value) is never put on the wire — Append omits the field — so
// default traffic stays byte-identical to version 3 and parses on old
// servers, whose strict trailing-bytes check would otherwise reject it.
const (
	EngineAuto = iota // let the server's planner choose per request
	EngineHA          // force the HA-Index walk
	EngineMIH         // force multi-index hashing
	EngineScan        // force the brute-force scan
)

// ParseEngine maps an -engine flag spelling to its wire hint.
func ParseEngine(name string) (int, error) {
	switch name {
	case "", "auto":
		return EngineAuto, nil
	case "ha", "ha-index":
		return EngineHA, nil
	case "mih":
		return EngineMIH, nil
	case "scan":
		return EngineScan, nil
	}
	return 0, fmt.Errorf("wire: unknown engine %q (want auto, ha, mih, or scan)", name)
}

// EngineName renders an engine hint for errors and logs.
func EngineName(e int) string {
	switch e {
	case EngineAuto:
		return "auto"
	case EngineHA:
		return "ha"
	case EngineMIH:
		return "mih"
	case EngineScan:
		return "scan"
	}
	return fmt.Sprintf("engine(%d)", e)
}

// Priority classes a SearchReq can carry since protocol version 5. They
// scale the server's admission-wait budget before it sheds: interactive
// traffic waits longest, batch traffic is shed first. PriorityNormal (the
// zero value) is never put on the wire, so default traffic stays
// byte-identical to version 4 and parses on old servers.
const (
	PriorityNormal      = iota // default admission budget
	PriorityInteractive        // user-facing: shed last
	PriorityBatch              // backfill: shed first
)

// ParsePriority maps a -priority flag spelling to its wire class.
func ParsePriority(name string) (int, error) {
	switch name {
	case "", "normal":
		return PriorityNormal, nil
	case "interactive", "high":
		return PriorityInteractive, nil
	case "batch", "low":
		return PriorityBatch, nil
	}
	return 0, fmt.Errorf("wire: unknown priority %q (want normal, interactive, or batch)", name)
}

// PriorityName renders a priority class for errors and logs.
func PriorityName(p int) string {
	switch p {
	case PriorityNormal:
		return "normal"
	case PriorityInteractive:
		return "interactive"
	case PriorityBatch:
		return "batch"
	}
	return fmt.Sprintf("priority(%d)", p)
}

// MaxFrame bounds a frame's payload so a corrupt or hostile length prefix
// cannot make a reader allocate unboundedly.
const MaxFrame = 1 << 26

// MsgType tags a frame.
type MsgType uint8

const (
	MsgHello MsgType = iota + 1
	MsgHelloOK
	MsgSearch
	MsgSearchOK
	MsgTopK
	MsgTopKOK
	MsgStats
	MsgStatsOK
	MsgError

	// Version 3: mutation frames for the LSM serving tier.
	MsgInsert
	MsgInsertOK
	MsgDelete
	MsgDeleteOK
	MsgSeal
	MsgSealOK

	// Version 5: the overload answer to a search or top-k request. Unlike
	// MsgError it is polite — the server is healthy but its admission queue
	// exceeded the request's wait budget, and the client should back off and
	// retry the same replica rather than fail over.
	MsgShed
)

func (t MsgType) String() string {
	switch t {
	case MsgHello:
		return "hello"
	case MsgHelloOK:
		return "hello-ok"
	case MsgSearch:
		return "search"
	case MsgSearchOK:
		return "search-ok"
	case MsgTopK:
		return "topk"
	case MsgTopKOK:
		return "topk-ok"
	case MsgStats:
		return "stats"
	case MsgStatsOK:
		return "stats-ok"
	case MsgError:
		return "error"
	case MsgInsert:
		return "insert"
	case MsgInsertOK:
		return "insert-ok"
	case MsgDelete:
		return "delete"
	case MsgDeleteOK:
		return "delete-ok"
	case MsgSeal:
		return "seal"
	case MsgSealOK:
		return "seal-ok"
	case MsgShed:
		return "shed"
	}
	return fmt.Sprintf("msg(%d)", uint8(t))
}

// WriteFrame writes one frame. The payload must be under MaxFrame bytes.
func WriteFrame(w io.Writer, t MsgType, payload []byte) error {
	if len(payload) >= MaxFrame {
		return fmt.Errorf("wire: %s frame payload %d exceeds limit", t, len(payload))
	}
	var hdr [5]byte
	binary.BigEndian.PutUint32(hdr[:4], uint32(len(payload)+1))
	hdr[4] = byte(t)
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	if len(payload) > 0 {
		if _, err := w.Write(payload); err != nil {
			return err
		}
	}
	return nil
}

// ReadFrame reads one frame, rejecting empty or oversized length prefixes.
func ReadFrame(r io.Reader) (MsgType, []byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n == 0 || n > MaxFrame {
		return 0, nil, fmt.Errorf("wire: implausible frame length %d", n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return 0, nil, fmt.Errorf("wire: short frame body: %w", err)
	}
	return MsgType(buf[0]), buf[1:], nil
}

// buf is a cursor over a received payload; every parse helper fails softly
// so corrupt input surfaces as an error, never a panic.
type buf struct {
	b   []byte
	err error
}

func (p *buf) uvarint() uint64 {
	if p.err != nil {
		return 0
	}
	v, n := binary.Uvarint(p.b)
	if n <= 0 {
		p.err = fmt.Errorf("wire: truncated varint")
		return 0
	}
	p.b = p.b[n:]
	return v
}

// count reads a length field that predicts at least perItem remaining bytes
// per element, so hostile counts fail immediately instead of allocating.
func (p *buf) count(perItem int) int {
	v := p.uvarint()
	if p.err != nil {
		return 0
	}
	if perItem < 1 {
		perItem = 1
	}
	if v > uint64(len(p.b)/perItem)+1 {
		p.err = fmt.Errorf("wire: count %d exceeds remaining payload", v)
		return 0
	}
	return int(v)
}

func (p *buf) intv() int {
	v := p.uvarint()
	if v > math.MaxInt32 {
		p.err = fmt.Errorf("wire: varint %d out of range", v)
		return 0
	}
	return int(v)
}

func (p *buf) code(length int) bitvec.Code {
	if p.err != nil {
		return bitvec.Code{}
	}
	c, n, err := bitvec.CodeFromBytes(p.b, length)
	if err != nil {
		p.err = err
		return bitvec.Code{}
	}
	p.b = p.b[n:]
	return c
}

func (p *buf) done() error {
	if p.err != nil {
		return p.err
	}
	if len(p.b) != 0 {
		return fmt.Errorf("wire: %d trailing bytes", len(p.b))
	}
	return nil
}

// Hello is the client's opening frame.
type Hello struct {
	Version int
}

func (m Hello) Append(dst []byte) []byte {
	return binary.AppendUvarint(dst, uint64(m.Version))
}

func ParseHello(payload []byte) (Hello, error) {
	p := &buf{b: payload}
	m := Hello{Version: p.intv()}
	return m, p.done()
}

// HelloOK describes the shard behind the connection: protocol version, code
// length, which Gray partition it owns out of how many, the pivot list the
// partitioning was built from (so a router can learn the routing table from
// the shards themselves), and the tuple count.
type HelloOK struct {
	Version int
	Length  int
	Part    int
	Parts   int
	Tuples  int
	Pivots  []bitvec.Code
}

func (m HelloOK) Append(dst []byte) []byte {
	dst = binary.AppendUvarint(dst, uint64(m.Version))
	dst = binary.AppendUvarint(dst, uint64(m.Length))
	dst = binary.AppendUvarint(dst, uint64(m.Part))
	dst = binary.AppendUvarint(dst, uint64(m.Parts))
	dst = binary.AppendUvarint(dst, uint64(m.Tuples))
	dst = binary.AppendUvarint(dst, uint64(len(m.Pivots)))
	for _, c := range m.Pivots {
		dst = c.AppendBytes(dst)
	}
	return dst
}

func ParseHelloOK(payload []byte) (HelloOK, error) {
	p := &buf{b: payload}
	m := HelloOK{
		Version: p.intv(),
		Length:  p.intv(),
		Part:    p.intv(),
		Parts:   p.intv(),
		Tuples:  p.intv(),
	}
	if p.err == nil && (m.Length <= 0 || m.Length > 1<<20) {
		return m, fmt.Errorf("wire: implausible code length %d", m.Length)
	}
	n := p.count(bitvec.EncodedLen(m.Length))
	for i := 0; i < n && p.err == nil; i++ {
		m.Pivots = append(m.Pivots, p.code(m.Length))
	}
	return m, p.done()
}

// SearchReq is a batch of Hamming-select queries at threshold H. Engine is
// the version-4 per-batch engine hint; EngineAuto leaves the choice to the
// server's planner and is what every client before version 4 implies.
// Priority is the version-5 admission class; PriorityNormal is what every
// client before version 5 implies.
type SearchReq struct {
	H        int
	Length   int
	Engine   int
	Priority int
	Queries  []bitvec.Code
}

func (m SearchReq) Append(dst []byte) []byte {
	return m.AppendVersion(dst, Version)
}

// AppendVersion encodes the request for a session negotiated at the given
// protocol version, silently dropping fields the peer cannot parse: the
// engine hint below version 4, the priority class below version 5. Both are
// optional trailing varints — engine then priority — and a default value is
// omitted unless a later field needs it as a placeholder, so a default
// request stays byte-identical across versions.
func (m SearchReq) AppendVersion(dst []byte, version int) []byte {
	dst = binary.AppendUvarint(dst, uint64(m.H))
	dst = binary.AppendUvarint(dst, uint64(len(m.Queries)))
	for _, q := range m.Queries {
		dst = q.AppendBytes(dst)
	}
	engine, priority := m.Engine, m.Priority
	if version < 5 {
		priority = PriorityNormal
	}
	if version < 4 {
		engine = EngineAuto
	}
	if priority != PriorityNormal {
		dst = binary.AppendUvarint(dst, uint64(engine))
		dst = binary.AppendUvarint(dst, uint64(priority))
	} else if engine != EngineAuto {
		dst = binary.AppendUvarint(dst, uint64(engine))
	}
	return dst
}

// ParseSearchReq decodes a request whose codes have the session's length.
func ParseSearchReq(payload []byte, length int) (SearchReq, error) {
	p := &buf{b: payload}
	m := SearchReq{Length: length, H: p.intv()}
	n := p.count(bitvec.EncodedLen(length))
	for i := 0; i < n && p.err == nil; i++ {
		m.Queries = append(m.Queries, p.code(length))
	}
	// Version-4 extension: trailing engine hint, optional so a v3 peer's
	// shorter payload still parses.
	if p.err == nil && len(p.b) != 0 {
		m.Engine = p.intv()
		if p.err == nil && (m.Engine < EngineAuto || m.Engine > EngineScan) {
			return m, fmt.Errorf("wire: unknown engine hint %d", m.Engine)
		}
	}
	// Version-5 extension: trailing priority class, optional likewise.
	if p.err == nil && len(p.b) != 0 {
		m.Priority = p.intv()
		if p.err == nil && (m.Priority < PriorityNormal || m.Priority > PriorityBatch) {
			return m, fmt.Errorf("wire: unknown priority class %d", m.Priority)
		}
	}
	return m, p.done()
}

// SearchResp carries, per query, the sorted matching ids (delta-encoded).
type SearchResp struct {
	IDs [][]int
}

func (m SearchResp) Append(dst []byte) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(m.IDs)))
	for _, ids := range m.IDs {
		dst = binary.AppendUvarint(dst, uint64(len(ids)))
		prev := 0
		for _, id := range ids {
			dst = binary.AppendUvarint(dst, uint64(id-prev))
			prev = id
		}
	}
	return dst
}

func ParseSearchResp(payload []byte) (SearchResp, error) {
	p := &buf{b: payload}
	nq := p.count(1)
	m := SearchResp{IDs: make([][]int, 0, nq)}
	for i := 0; i < nq && p.err == nil; i++ {
		n := p.count(1)
		var ids []int
		prev := 0
		for j := 0; j < n && p.err == nil; j++ {
			prev += p.intv()
			ids = append(ids, prev)
		}
		m.IDs = append(m.IDs, ids)
	}
	return m, p.done()
}

// TopKReq asks for the K nearest ids per query.
type TopKReq struct {
	K       int
	Length  int
	Queries []bitvec.Code
}

func (m TopKReq) Append(dst []byte) []byte {
	dst = binary.AppendUvarint(dst, uint64(m.K))
	dst = binary.AppendUvarint(dst, uint64(len(m.Queries)))
	for _, q := range m.Queries {
		dst = q.AppendBytes(dst)
	}
	return dst
}

func ParseTopKReq(payload []byte, length int) (TopKReq, error) {
	p := &buf{b: payload}
	m := TopKReq{Length: length, K: p.intv()}
	n := p.count(bitvec.EncodedLen(length))
	for i := 0; i < n && p.err == nil; i++ {
		m.Queries = append(m.Queries, p.code(length))
	}
	return m, p.done()
}

// TopKResp carries, per query, (id, distance) pairs ordered by
// (distance, id) — the order the router's k-way merge preserves.
type TopKResp struct {
	IDs   [][]int
	Dists [][]int
}

func (m TopKResp) Append(dst []byte) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(m.IDs)))
	for i, ids := range m.IDs {
		dst = binary.AppendUvarint(dst, uint64(len(ids)))
		for j, id := range ids {
			dst = binary.AppendUvarint(dst, uint64(id))
			dst = binary.AppendUvarint(dst, uint64(m.Dists[i][j]))
		}
	}
	return dst
}

func ParseTopKResp(payload []byte) (TopKResp, error) {
	p := &buf{b: payload}
	nq := p.count(1)
	m := TopKResp{IDs: make([][]int, 0, nq), Dists: make([][]int, 0, nq)}
	for i := 0; i < nq && p.err == nil; i++ {
		n := p.count(2)
		var ids, dists []int
		for j := 0; j < n && p.err == nil; j++ {
			ids = append(ids, p.intv())
			dists = append(dists, p.intv())
		}
		m.IDs = append(m.IDs, ids)
		m.Dists = append(m.Dists, dists)
	}
	return m, p.done()
}

// StatsResp is the server's counter snapshot. The four latency fields are
// per-request search/top-k latency percentiles in nanoseconds, served from
// the shard's observability registry; they were added in protocol version 2
// and are absent from v1 payloads (ParseStatsResp leaves them zero). The
// five warmth fields were added in protocol version 6: result-cache
// occupancy and lifetime hit/miss counts, the admission-wait median, and
// the number of idle admission tickets — the cheap load signal a router
// steers replica selection with. Both extensions are optional trailing
// varints, so a shorter payload from an older peer parses with the missing
// fields left zero.
type StatsResp struct {
	Requests             int64
	Queries              int64
	TopKQueries          int64
	IDsReturned          int64
	Errors               int64
	FaultsInjected       int64
	DistanceComputations int64
	NodesVisited         int64
	LeavesChecked        int64

	LatencyP50Ns int64
	LatencyP95Ns int64
	LatencyP99Ns int64
	LatencyMaxNs int64

	CacheEntries   int64
	CacheHits      int64
	CacheMisses    int64
	AdmissionP50Ns int64
	PoolIdle       int64
}

func (m StatsResp) Append(dst []byte) []byte {
	return m.AppendVersion(dst, Version)
}

// AppendVersion encodes the snapshot for a session negotiated at the given
// protocol version, emitting only the field groups the peer can parse: the
// nine counters always, the latency percentiles at version 2 and above, the
// warmth fields at version 6 and above. Older parsers reject trailing
// bytes, so a server must encode for the negotiated version, not its own.
func (m StatsResp) AppendVersion(dst []byte, version int) []byte {
	for _, v := range []int64{
		m.Requests, m.Queries, m.TopKQueries, m.IDsReturned, m.Errors,
		m.FaultsInjected, m.DistanceComputations, m.NodesVisited, m.LeavesChecked,
	} {
		dst = binary.AppendUvarint(dst, uint64(v))
	}
	if version >= 2 {
		for _, v := range []int64{
			m.LatencyP50Ns, m.LatencyP95Ns, m.LatencyP99Ns, m.LatencyMaxNs,
		} {
			dst = binary.AppendUvarint(dst, uint64(v))
		}
	}
	if version >= 6 {
		for _, v := range []int64{
			m.CacheEntries, m.CacheHits, m.CacheMisses, m.AdmissionP50Ns, m.PoolIdle,
		} {
			dst = binary.AppendUvarint(dst, uint64(v))
		}
	}
	return dst
}

// AppendV1 emits the version-1 payload, without the latency percentile
// fields — what a server sends on a session negotiated down to protocol
// version 1, whose peer rejects trailing bytes.
func (m StatsResp) AppendV1(dst []byte) []byte {
	return m.AppendVersion(dst, 1)
}

func ParseStatsResp(payload []byte) (StatsResp, error) {
	p := &buf{b: payload}
	var m StatsResp
	for _, f := range []*int64{
		&m.Requests, &m.Queries, &m.TopKQueries, &m.IDsReturned, &m.Errors,
		&m.FaultsInjected, &m.DistanceComputations, &m.NodesVisited, &m.LeavesChecked,
	} {
		*f = int64(p.uvarint())
	}
	// Version-2 extension: latency percentiles, optional so a v1 peer's
	// shorter payload still parses.
	for _, f := range []*int64{
		&m.LatencyP50Ns, &m.LatencyP95Ns, &m.LatencyP99Ns, &m.LatencyMaxNs,
	} {
		if p.err == nil && len(p.b) == 0 {
			break
		}
		*f = int64(p.uvarint())
	}
	// Version-6 extension: warmth and load, optional likewise. A payload
	// with latency but no warmth (v2..v5) stops at the earlier break.
	for _, f := range []*int64{
		&m.CacheEntries, &m.CacheHits, &m.CacheMisses, &m.AdmissionP50Ns, &m.PoolIdle,
	} {
		if p.err == nil && len(p.b) == 0 {
			break
		}
		*f = int64(p.uvarint())
	}
	return m, p.done()
}

// ShedResp is the payload of a MsgShed answer: the server refused to queue
// the request past its admission budget. WaitNs reports how long the
// request did wait before being shed, so clients and load harnesses can see
// the budget that was burned.
type ShedResp struct {
	WaitNs int64
}

func (m ShedResp) Append(dst []byte) []byte {
	return binary.AppendUvarint(dst, uint64(m.WaitNs))
}

func ParseShedResp(payload []byte) (ShedResp, error) {
	p := &buf{b: payload}
	m := ShedResp{WaitNs: int64(p.uvarint())}
	return m, p.done()
}

// ErrorMsg is the server-side failure report for one request.
type ErrorMsg struct {
	Msg string
}

func (m ErrorMsg) Append(dst []byte) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(m.Msg)))
	return append(dst, m.Msg...)
}

func ParseErrorMsg(payload []byte) (ErrorMsg, error) {
	p := &buf{b: payload}
	n := p.count(1)
	if p.err != nil {
		return ErrorMsg{}, p.err
	}
	if n > len(p.b) {
		return ErrorMsg{}, fmt.Errorf("wire: error message length %d exceeds payload", n)
	}
	m := ErrorMsg{Msg: string(p.b[:n])}
	p.b = p.b[n:]
	return m, p.done()
}
