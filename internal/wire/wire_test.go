package wire

import (
	"bytes"
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"haindex/internal/bitvec"
	"haindex/internal/core"
	"haindex/internal/histo"
	"haindex/internal/mih"
)

func randCodes(rng *rand.Rand, n, bits int) []bitvec.Code {
	out := make([]bitvec.Code, n)
	for i := range out {
		out[i] = bitvec.Rand(rng, bits)
	}
	return out
}

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	payload := []byte{1, 2, 3, 250}
	if err := WriteFrame(&buf, MsgSearch, payload); err != nil {
		t.Fatal(err)
	}
	if err := WriteFrame(&buf, MsgStats, nil); err != nil {
		t.Fatal(err)
	}
	typ, got, err := ReadFrame(&buf)
	if err != nil || typ != MsgSearch || !bytes.Equal(got, payload) {
		t.Fatalf("frame 1: %v %v %v", typ, got, err)
	}
	typ, got, err = ReadFrame(&buf)
	if err != nil || typ != MsgStats || len(got) != 0 {
		t.Fatalf("frame 2: %v %v %v", typ, got, err)
	}
}

func TestFrameErrors(t *testing.T) {
	// Oversized length prefix.
	hdr := []byte{0xff, 0xff, 0xff, 0xff, 1}
	if _, _, err := ReadFrame(bytes.NewReader(hdr)); err == nil {
		t.Fatal("oversized frame accepted")
	}
	// Zero-length frame (no type byte).
	if _, _, err := ReadFrame(bytes.NewReader([]byte{0, 0, 0, 0})); err == nil {
		t.Fatal("zero frame accepted")
	}
	// Truncated body.
	var buf bytes.Buffer
	if err := WriteFrame(&buf, MsgHello, []byte{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := ReadFrame(bytes.NewReader(buf.Bytes()[:buf.Len()-2])); err == nil {
		t.Fatal("truncated frame accepted")
	}
}

func TestMessageRoundTrips(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, bits := range []int{16, 64, 100} {
		pivots := randCodes(rng, 3, bits)
		hello := HelloOK{Version: Version, Length: bits, Part: 2, Parts: 4, Tuples: 999, Pivots: pivots}
		got, err := ParseHelloOK(hello.Append(nil))
		if err != nil {
			t.Fatal(err)
		}
		if got.Part != 2 || got.Parts != 4 || got.Tuples != 999 || got.Length != bits || len(got.Pivots) != 3 {
			t.Fatalf("hello round trip: %+v", got)
		}
		for i := range pivots {
			if !got.Pivots[i].Equal(pivots[i]) {
				t.Fatalf("pivot %d mismatch", i)
			}
		}

		req := SearchReq{H: 5, Queries: randCodes(rng, 7, bits)}
		gotReq, err := ParseSearchReq(req.Append(nil), bits)
		if err != nil {
			t.Fatal(err)
		}
		if gotReq.H != 5 || len(gotReq.Queries) != 7 {
			t.Fatalf("search req: %+v", gotReq)
		}
		for i := range req.Queries {
			if !gotReq.Queries[i].Equal(req.Queries[i]) {
				t.Fatalf("query %d mismatch", i)
			}
		}
	}

	resp := SearchResp{IDs: [][]int{{1, 5, 900000}, nil, {0}}}
	gotResp, err := ParseSearchResp(resp.Append(nil))
	if err != nil {
		t.Fatal(err)
	}
	if len(gotResp.IDs) != 3 || len(gotResp.IDs[0]) != 3 || gotResp.IDs[0][2] != 900000 || gotResp.IDs[2][0] != 0 {
		t.Fatalf("search resp: %+v", gotResp)
	}

	tk := TopKResp{IDs: [][]int{{9, 2}}, Dists: [][]int{{0, 3}}}
	gotTK, err := ParseTopKResp(tk.Append(nil))
	if err != nil {
		t.Fatal(err)
	}
	if gotTK.IDs[0][1] != 2 || gotTK.Dists[0][1] != 3 {
		t.Fatalf("topk resp: %+v", gotTK)
	}

	st := StatsResp{Requests: 7, Queries: 100, IDsReturned: 12, FaultsInjected: 2, DistanceComputations: 555}
	gotSt, err := ParseStatsResp(st.Append(nil))
	if err != nil || gotSt != st {
		t.Fatalf("stats resp: %+v err %v", gotSt, err)
	}

	em := ErrorMsg{Msg: "injected failure"}
	gotEm, err := ParseErrorMsg(em.Append(nil))
	if err != nil || gotEm.Msg != em.Msg {
		t.Fatalf("error msg: %+v err %v", gotEm, err)
	}
}

func TestParseErrorPaths(t *testing.T) {
	cases := []struct {
		name  string
		parse func([]byte) error
		data  []byte
	}{
		{"hello empty", func(b []byte) error { _, err := ParseHello(b); return err }, nil},
		{"hello trailing", func(b []byte) error { _, err := ParseHello(b); return err }, []byte{1, 99}},
		{"hello-ok truncated", func(b []byte) error { _, err := ParseHelloOK(b); return err }, []byte{1, 32}},
		{"hello-ok zero length", func(b []byte) error { _, err := ParseHelloOK(b); return err }, []byte{1, 0, 0, 2, 0, 0}},
		{"hello-ok hostile pivot count", func(b []byte) error { _, err := ParseHelloOK(b); return err },
			[]byte{1, 16, 0, 2, 0, 0xff, 0xff, 0xff, 0xff, 0x7f}},
		{"search-resp hostile count", func(b []byte) error { _, err := ParseSearchResp(b); return err },
			[]byte{0xff, 0xff, 0xff, 0xff, 0x7f}},
		{"topk-resp truncated pair", func(b []byte) error { _, err := ParseTopKResp(b); return err },
			[]byte{1, 2, 5}},
		{"stats truncated", func(b []byte) error { _, err := ParseStatsResp(b); return err }, []byte{1, 2}},
		{"error-msg short", func(b []byte) error { _, err := ParseErrorMsg(b); return err }, []byte{9, 'h', 'i'}},
	}
	for _, tc := range cases {
		if err := tc.parse(tc.data); err == nil {
			t.Errorf("%s: corrupt payload accepted", tc.name)
		}
	}
	if _, err := ParseSearchReq([]byte{3, 2, 0xAA}, 64); err == nil {
		t.Error("search req with short code accepted")
	}
}

func buildSnapshot(t testing.TB, rng *rand.Rand, bits, parts int) (SnapshotMeta, *core.DynamicIndex, []byte) {
	codes := randCodes(rng, 300, bits)
	pivots := histo.Pivots(codes[:100], parts)
	meta := SnapshotMeta{Part: 1, Parts: parts, Length: bits, Pivots: pivots}
	own := make([]bitvec.Code, 0, len(codes))
	ids := make([]int, 0, len(codes))
	for i, c := range codes {
		if histo.PartitionID(pivots, c) == meta.Part {
			own = append(own, c)
			ids = append(ids, i)
		}
	}
	idx := core.BuildDynamic(own, ids, core.Options{})
	var buf bytes.Buffer
	if err := WriteSnapshot(&buf, meta, idx); err != nil {
		t.Fatal(err)
	}
	return meta, idx, buf.Bytes()
}

func TestSnapshotRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	meta, idx, data := buildSnapshot(t, rng, 32, 4)
	gotMeta, gotIdx, err := ReadSnapshot(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if gotMeta.Part != meta.Part || gotMeta.Parts != meta.Parts || gotMeta.Length != meta.Length {
		t.Fatalf("meta: %+v vs %+v", gotMeta, meta)
	}
	for i := range meta.Pivots {
		if !gotMeta.Pivots[i].Equal(meta.Pivots[i]) {
			t.Fatalf("pivot %d mismatch", i)
		}
	}
	if gotIdx.Len() != idx.Len() {
		t.Fatalf("tuples %d vs %d", gotIdx.Len(), idx.Len())
	}
	q := idx.Codes()[0]
	if got, want := core.NewSearcher(gotIdx).Search(q, 2), idx.Search(q, 2); len(got) != len(want) {
		t.Fatalf("decoded snapshot answers differently: %v vs %v", got, want)
	}
}

func TestFrozenSnapshotRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	meta, idx, _ := buildSnapshot(t, rng, 32, 4)
	frozen := core.Freeze(idx)
	var buf bytes.Buffer
	if err := WriteSnapshot(&buf, meta, frozen); err != nil {
		t.Fatal(err)
	}
	gotMeta, gotIdx, err := ReadSnapshot(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	gotFrozen, ok := gotIdx.(*core.FrozenIndex)
	if !ok {
		t.Fatalf("frozen snapshot decoded as %T", gotIdx)
	}
	if gotMeta.Part != meta.Part || gotMeta.Parts != meta.Parts || gotMeta.Length != meta.Length {
		t.Fatalf("meta: %+v vs %+v", gotMeta, meta)
	}
	if gotFrozen.Len() != idx.Len() {
		t.Fatalf("tuples %d vs %d", gotFrozen.Len(), idx.Len())
	}
	sr := core.NewSearcher(gotFrozen)
	oracle := core.NewSearcher(idx)
	for _, q := range idx.Codes()[:10] {
		got := append([]int(nil), sr.Search(q, 3)...)
		want := append([]int(nil), oracle.Search(q, 3)...)
		sort.Ints(got)
		sort.Ints(want)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("frozen snapshot answers differently: %v vs %v", got, want)
		}
	}
}

func TestSnapshotErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	_, _, data := buildSnapshot(t, rng, 32, 3)
	cases := []struct {
		name string
		data []byte
	}{
		{"empty", nil},
		{"bad magic", []byte("NOPE this is not a snapshot")},
		{"truncated header", data[:6]},
		{"truncated pivots", data[:10]},
		{"truncated index", data[:len(data)-20]},
		{"index magic corrupted", append(append([]byte{}, data[:len(data)-idxLen(t, data)]...), 'X')},
	}
	for _, tc := range cases {
		if _, _, err := ReadSnapshot(bytes.NewReader(tc.data)); err == nil {
			t.Errorf("%s: corrupt snapshot accepted", tc.name)
		}
	}
	// Inconsistent meta must fail validation on write.
	idx := core.BuildDynamic(randCodes(rng, 10, 16), nil, core.Options{})
	var buf bytes.Buffer
	if err := WriteSnapshot(&buf, SnapshotMeta{Part: 5, Parts: 2, Length: 16, Pivots: randCodes(rng, 1, 16)}, idx); err == nil {
		t.Error("out-of-range partition accepted")
	}
	if err := WriteSnapshot(&buf, SnapshotMeta{Part: 0, Parts: 1, Length: 32}, idx); err == nil {
		t.Error("length mismatch with index accepted")
	}
}

// idxLen finds how many trailing bytes belong to the embedded index by
// locating the HADX magic.
func idxLen(t *testing.T, data []byte) int {
	i := bytes.Index(data, []byte("HADX"))
	if i < 0 {
		t.Fatal("no embedded index magic")
	}
	return len(data) - i
}

// TestSearchReqEngineHint: the v4 trailing engine field round-trips, the
// auto default stays off the wire (byte-identical to v3), and unknown hints
// are rejected.
func TestSearchReqEngineHint(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	queries := randCodes(rng, 3, 64)
	base := SearchReq{H: 4, Queries: queries}.Append(nil)
	for _, engine := range []int{EngineAuto, EngineHA, EngineMIH, EngineScan} {
		payload := SearchReq{H: 4, Engine: engine, Queries: queries}.Append(nil)
		if engine == EngineAuto && !bytes.Equal(payload, base) {
			t.Fatal("auto engine changed the encoding")
		}
		got, err := ParseSearchReq(payload, 64)
		if err != nil {
			t.Fatalf("engine %s: %v", EngineName(engine), err)
		}
		if got.Engine != engine || got.H != 4 || len(got.Queries) != 3 {
			t.Fatalf("engine %s round trip: %+v", EngineName(engine), got)
		}
	}
	// An out-of-range hint and garbage after the hint must both fail.
	if _, err := ParseSearchReq(append(append([]byte(nil), base...), 9), 64); err == nil {
		t.Error("unknown engine hint accepted")
	}
	// One extra varint after the engine hint is a v5 priority class; two
	// extra are garbage.
	withHint := SearchReq{H: 4, Engine: EngineMIH, Queries: queries}.Append(nil)
	if _, err := ParseSearchReq(append(append([]byte(nil), withHint...), 1, 1), 64); err == nil {
		t.Error("trailing bytes after engine hint and priority accepted")
	}
}

// TestSearchReqPriority: the v5 trailing priority class round-trips (with
// and without an engine hint), the normal default stays off the wire, and
// out-of-range classes are rejected.
func TestSearchReqPriority(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	queries := randCodes(rng, 2, 32)
	base := SearchReq{H: 3, Queries: queries}.Append(nil)
	for _, engine := range []int{EngineAuto, EngineMIH} {
		for _, prio := range []int{PriorityNormal, PriorityInteractive, PriorityBatch} {
			payload := SearchReq{H: 3, Engine: engine, Priority: prio, Queries: queries}.Append(nil)
			if engine == EngineAuto && prio == PriorityNormal && !bytes.Equal(payload, base) {
				t.Fatal("default engine+priority changed the encoding")
			}
			got, err := ParseSearchReq(payload, 32)
			if err != nil {
				t.Fatalf("engine %s priority %s: %v", EngineName(engine), PriorityName(prio), err)
			}
			if got.Engine != engine || got.Priority != prio || got.H != 3 || len(got.Queries) != 2 {
				t.Fatalf("engine %s priority %s round trip: %+v", EngineName(engine), PriorityName(prio), got)
			}
		}
	}
	// A nonzero priority forces the engine placeholder onto the wire, so the
	// two trailing varints stay positional.
	withPrio := SearchReq{H: 3, Priority: PriorityBatch, Queries: queries}.Append(nil)
	if len(withPrio) != len(base)+2 {
		t.Fatalf("priority-only encoding is %d bytes, want %d", len(withPrio), len(base)+2)
	}
	// An out-of-range class and garbage after it must both fail.
	bad := SearchReq{H: 3, Engine: EngineHA, Queries: queries}.Append(nil)
	if _, err := ParseSearchReq(append(bad, 7), 32); err == nil {
		t.Error("unknown priority class accepted")
	}
	if _, err := ParseSearchReq(append(withPrio, 1), 32); err == nil {
		t.Error("trailing bytes after priority accepted")
	}
}

// TestSearchReqDowngrade: a v5 client encoding for an older negotiated
// session omits exactly the fields the peer cannot parse — the priority
// class below version 5, the engine hint below version 4 — leaving the
// request byte-identical to what a native client of that version sends.
func TestSearchReqDowngrade(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	queries := randCodes(rng, 2, 32)
	req := SearchReq{H: 5, Engine: EngineMIH, Priority: PriorityInteractive, Queries: queries}

	v3 := req.AppendVersion(nil, 3)
	v3native := SearchReq{H: 5, Queries: queries}.AppendVersion(nil, 3)
	if !bytes.Equal(v3, v3native) {
		t.Fatal("v3 downgrade not byte-identical to a native v3 request")
	}
	got, err := ParseSearchReq(v3, 32)
	if err != nil {
		t.Fatal(err)
	}
	if got.Engine != EngineAuto || got.Priority != PriorityNormal {
		t.Fatalf("v3 downgrade kept dropped fields: %+v", got)
	}

	v4 := req.AppendVersion(nil, 4)
	v4native := SearchReq{H: 5, Engine: EngineMIH, Queries: queries}.AppendVersion(nil, 4)
	if !bytes.Equal(v4, v4native) {
		t.Fatal("v4 downgrade not byte-identical to a native v4 request")
	}
	got, err = ParseSearchReq(v4, 32)
	if err != nil {
		t.Fatal(err)
	}
	if got.Engine != EngineMIH || got.Priority != PriorityNormal {
		t.Fatalf("v4 downgrade: engine kept, priority dropped, got %+v", got)
	}

	v5 := req.AppendVersion(nil, 5)
	if !bytes.Equal(v5, req.Append(nil)) {
		t.Fatal("current-version AppendVersion differs from Append")
	}
	got, err = ParseSearchReq(v5, 32)
	if err != nil {
		t.Fatal(err)
	}
	if got.Engine != EngineMIH || got.Priority != PriorityInteractive {
		t.Fatalf("v5 round trip: %+v", got)
	}
}

// TestShedRespRoundTrip: the v5 shed payload round-trips and rejects junk.
func TestShedRespRoundTrip(t *testing.T) {
	payload := ShedResp{WaitNs: 123456789}.Append(nil)
	got, err := ParseShedResp(payload)
	if err != nil {
		t.Fatal(err)
	}
	if got.WaitNs != 123456789 {
		t.Fatalf("WaitNs round trip: %d", got.WaitNs)
	}
	if _, err := ParseShedResp(append(payload, 0)); err == nil {
		t.Error("trailing bytes accepted")
	}
	if _, err := ParseShedResp(nil); err == nil {
		t.Error("empty payload accepted")
	}
}

// TestMIHSnapshotRoundTrip: a v3 snapshot embeds the MIH arena encoding and
// decodes back to the engine behind the core.Index adapter.
func TestMIHSnapshotRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	meta, idx, _ := buildSnapshot(t, rng, 32, 4)
	m, err := mih.FromTuples(core.Freeze(idx), mih.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteSnapshot(&buf, meta, core.AsIndex(m)); err != nil {
		t.Fatal(err)
	}
	gotMeta, gotIdx, err := ReadSnapshot(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	ei, ok := gotIdx.(*core.EngineIndex)
	if !ok {
		t.Fatalf("MIH snapshot decoded as %T", gotIdx)
	}
	if _, ok := ei.Engine().(*mih.Index); !ok {
		t.Fatalf("decoded adapter wraps %T", ei.Engine())
	}
	if gotMeta.Parts != meta.Parts || gotIdx.Len() != idx.Len() {
		t.Fatalf("meta/tuples mismatch: %+v len=%d want %d", gotMeta, gotIdx.Len(), idx.Len())
	}
	sr := core.NewSearcher(gotIdx)
	oracle := core.NewSearcher(idx)
	for _, q := range idx.Codes()[:10] {
		got := append([]int(nil), sr.Search(q, 3)...)
		want := append([]int(nil), oracle.Search(q, 3)...)
		sort.Ints(got)
		sort.Ints(want)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("MIH snapshot answers differently: %v vs %v", got, want)
		}
	}
	// A version-3 header spliced onto a frozen index body must be rejected.
	frozen := core.Freeze(idx)
	var fbuf bytes.Buffer
	if err := WriteSnapshot(&fbuf, meta, frozen); err != nil {
		t.Fatal(err)
	}
	spliced := append([]byte(nil), buf.Bytes()[:bytes.Index(buf.Bytes(), []byte("HADX"))]...)
	fb := fbuf.Bytes()
	spliced = append(spliced, fb[bytes.Index(fb, []byte("HADX")):]...)
	if _, _, err := ReadSnapshot(bytes.NewReader(spliced)); err == nil {
		t.Error("snapshot with mismatched header/index versions accepted")
	}
}
