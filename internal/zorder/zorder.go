// Package zorder implements Z-order (Morton) interleaving of quantized
// coordinates, the space-filling-curve substrate of the LSB-Tree baseline:
// LSH projections of a point are quantized to u bits each and bit-interleaved
// into a single key whose B-tree order approximates spatial proximity.
package zorder

import "fmt"

// Interleave packs the low `bits` bits of each coordinate into one uint64
// key by bit interleaving, most significant bits first, cycling over
// dimensions. It panics when bits*len(coords) exceeds 64.
func Interleave(coords []uint32, bits int) uint64 {
	m := len(coords)
	if m == 0 || bits <= 0 || bits > 32 {
		panic(fmt.Sprintf("zorder: invalid interleave m=%d bits=%d", m, bits))
	}
	if m*bits > 64 {
		panic(fmt.Sprintf("zorder: %d dims × %d bits exceeds 64", m, bits))
	}
	var z uint64
	for b := bits - 1; b >= 0; b-- {
		for _, c := range coords {
			z = z<<1 | uint64(c>>uint(b)&1)
		}
	}
	return z
}

// Deinterleave is the inverse of Interleave for m coordinates of the given
// bit width.
func Deinterleave(z uint64, m, bits int) []uint32 {
	if m == 0 || bits <= 0 || m*bits > 64 {
		panic(fmt.Sprintf("zorder: invalid deinterleave m=%d bits=%d", m, bits))
	}
	out := make([]uint32, m)
	for b := bits - 1; b >= 0; b-- {
		for d := 0; d < m; d++ {
			shift := uint(b*m + (m - 1 - d))
			out[d] |= uint32(z>>shift&1) << uint(b)
		}
	}
	return out
}

// Quantize maps x in [lo, hi] to a bits-bit integer grid cell; values outside
// the range clamp to the boundary cells.
func Quantize(x, lo, hi float64, bits int) uint32 {
	cells := uint32(1) << uint(bits)
	if hi <= lo {
		return 0
	}
	f := (x - lo) / (hi - lo)
	if f <= 0 {
		return 0
	}
	if f >= 1 {
		return cells - 1
	}
	q := uint32(f * float64(cells))
	if q >= cells {
		q = cells - 1
	}
	return q
}
