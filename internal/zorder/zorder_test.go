package zorder

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestInterleaveSmall(t *testing.T) {
	// 2 dims × 2 bits: x=0b10, y=0b01 -> bits x1 y1 x0 y0 = 1 0 0 1.
	z := Interleave([]uint32{0b10, 0b01}, 2)
	if z != 0b1001 {
		t.Fatalf("z=%b", z)
	}
}

func TestRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := 1 + rng.Intn(8)
		bits := 1 + rng.Intn(64/m)
		if bits > 32 {
			bits = 32
		}
		coords := make([]uint32, m)
		for i := range coords {
			coords[i] = rng.Uint32() & (1<<uint(bits) - 1)
		}
		back := Deinterleave(Interleave(coords, bits), m, bits)
		for i := range coords {
			if back[i] != coords[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestMonotone: along a single dimension with the others fixed, z-values are
// increasing.
func TestMonotone(t *testing.T) {
	prev := uint64(0)
	for x := uint32(0); x < 16; x++ {
		z := Interleave([]uint32{x, 5}, 4)
		if x > 0 && z <= prev {
			t.Fatalf("not monotone at x=%d", x)
		}
		prev = z
	}
}

func TestQuantize(t *testing.T) {
	if Quantize(0, 0, 1, 4) != 0 {
		t.Error("lo should map to 0")
	}
	if got := Quantize(1, 0, 1, 4); got != 15 {
		t.Errorf("hi -> %d want 15", got)
	}
	if got := Quantize(0.5, 0, 1, 4); got != 8 {
		t.Errorf("mid -> %d want 8", got)
	}
	if Quantize(-5, 0, 1, 4) != 0 || Quantize(7, 0, 1, 4) != 15 {
		t.Error("out-of-range values must clamp")
	}
	if Quantize(3, 5, 5, 4) != 0 {
		t.Error("degenerate range maps to 0")
	}
	// Monotonicity over the range.
	prev := uint32(0)
	for i := 0; i <= 100; i++ {
		q := Quantize(float64(i)/100, 0, 1, 6)
		if q < prev {
			t.Fatalf("quantize not monotone at %d", i)
		}
		prev = q
	}
}

func TestInterleavePanics(t *testing.T) {
	cases := []func(){
		func() { Interleave(nil, 4) },
		func() { Interleave(make([]uint32, 3), 33) },
		func() { Interleave(make([]uint32, 9), 8) }, // 72 bits
		func() { Deinterleave(0, 0, 4) },
		func() { Deinterleave(0, 9, 8) },
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			fn()
		}()
	}
}
