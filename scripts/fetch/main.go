// Command fetch GETs one URL and writes the body to stdout — the smoke
// script's fallback when neither curl nor wget is installed (only the Go
// toolchain is assumed).
package main

import (
	"fmt"
	"io"
	"net/http"
	"os"
)

func main() {
	if len(os.Args) != 2 {
		fmt.Fprintln(os.Stderr, "usage: fetch URL")
		os.Exit(2)
	}
	resp, err := http.Get(os.Args[1])
	if err != nil {
		fmt.Fprintln(os.Stderr, "fetch:", err)
		os.Exit(1)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		fmt.Fprintln(os.Stderr, "fetch:", resp.Status)
		os.Exit(1)
	}
	if _, err := io.Copy(os.Stdout, resp.Body); err != nil {
		fmt.Fprintln(os.Stderr, "fetch:", err)
		os.Exit(1)
	}
}
