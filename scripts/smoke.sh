#!/bin/sh
# End-to-end smoke test of the sharded serving stack:
#   hagen -> haidx shard -> 2x haserve (one replica fault-injected) ->
#   haquery with the in-process oracle diff.
# Exits nonzero if any step fails or the distributed answers differ from a
# single-index oracle.
set -eu

cd "$(dirname "$0")/.."
WORK=$(mktemp -d)
PIDS=""
cleanup() {
    for pid in $PIDS; do kill "$pid" 2>/dev/null || true; done
    wait 2>/dev/null || true
    rm -rf "$WORK"
}
trap cleanup EXIT INT TERM

echo "smoke: building CLIs into $WORK/bin"
go build -o "$WORK/bin/" ./cmd/hagen ./cmd/haidx ./cmd/haserve ./cmd/haquery

echo "smoke: generating and sharding a tiny dataset"
"$WORK/bin/hagen" -profile NUS-WIDE -n 2000 -seed 7 -o "$WORK/data.csv"
"$WORK/bin/haidx" shard -data "$WORK/data.csv" -bits 32 -parts 2 -o "$WORK/shards"

echo "smoke: starting two shard servers (shard 0 fails its first request)"
"$WORK/bin/haserve" -snapshot "$WORK/shards/shard-00000.hasn" -addr 127.0.0.1:0 \
    -port-file "$WORK/s0.addr" -fail-requests 0 &
PIDS="$PIDS $!"
"$WORK/bin/haserve" -snapshot "$WORK/shards/shard-00001.hasn" -addr 127.0.0.1:0 \
    -port-file "$WORK/s1.addr" &
PIDS="$PIDS $!"

for f in s0.addr s1.addr; do
    tries=0
    while [ ! -s "$WORK/$f" ]; do
        tries=$((tries + 1))
        [ "$tries" -gt 100 ] && { echo "smoke: $f never appeared" >&2; exit 1; }
        sleep 0.1
    done
done
ADDR0=$(cat "$WORK/s0.addr")
ADDR1=$(cat "$WORK/s1.addr")

echo "smoke: querying rows 0-49 through the router (h=3, top-5), diffing vs oracle"
"$WORK/bin/haquery" -shards "$ADDR0,$ADDR1" \
    -codes-file "$WORK/shards/codes.txt" -rows 0-49 -h 3 -topk 5 \
    -oracle "$WORK/shards"

echo "smoke: OK"
