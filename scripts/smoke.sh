#!/bin/sh
# End-to-end smoke test of the sharded serving stack:
#   hagen -> haidx shard -> 2x haserve (one replica fault-injected) ->
#   haquery with the in-process oracle diff.
# Exits nonzero if any step fails or the distributed answers differ from a
# single-index oracle.
#
# Shard 0 serves with a result cache and sheds one deterministic request;
# the query rows run twice, so the second pass is answered from the cache
# (the oracle diff proves cached answers stay byte-identical) after riding
# out the shed with the router's polite backoff.
#
# With SMOKE_DEBUG=1 (make debug-smoke), shard 0 also binds its HTTP debug
# endpoint; after the queries run, /debug/obs is fetched and must report a
# non-empty request-latency histogram, nonzero request/fault counters, and —
# since haserve defaults to -engine auto — nonzero planner strategy counters
# plus per-engine latency samples, and nonzero qcache hit/miss and shed
# counters from the repeat pass.
#
# With SMOKE_LSM=1 (make lsm-smoke), the snapshots are additionally served
# by mutable (LSM) shards, and insert -> seal -> compact -> upsert -> delete
# are driven through haquery with searches verifying every step.
set -eu

cd "$(dirname "$0")/.."
WORK=$(mktemp -d)
PIDS=""
cleanup() {
    for pid in $PIDS; do kill "$pid" 2>/dev/null || true; done
    wait 2>/dev/null || true
    rm -rf "$WORK"
}
trap cleanup EXIT INT TERM

echo "smoke: building CLIs into $WORK/bin"
go build -o "$WORK/bin/" ./cmd/hagen ./cmd/haidx ./cmd/haserve ./cmd/haquery

echo "smoke: generating and sharding a tiny dataset"
"$WORK/bin/hagen" -profile NUS-WIDE -n 2000 -seed 7 -o "$WORK/data.csv"
"$WORK/bin/haidx" shard -data "$WORK/data.csv" -bits 32 -parts 2 -o "$WORK/shards"

SMOKE_DEBUG=${SMOKE_DEBUG:-0}
DEBUG_FLAGS=""
if [ "$SMOKE_DEBUG" = "1" ]; then
    DEBUG_FLAGS="-debug-addr 127.0.0.1:0 -debug-port-file $WORK/s0.debug"
fi

echo "smoke: starting two shard servers (shard 0 fails request 0, sheds request 3, caches results)"
# shellcheck disable=SC2086 # DEBUG_FLAGS is intentionally word-split
"$WORK/bin/haserve" -snapshot "$WORK/shards/shard-00000.hasn" -addr 127.0.0.1:0 \
    -port-file "$WORK/s0.addr" -fail-requests 0 -shed-requests 3 -cache 1024 $DEBUG_FLAGS &
PIDS="$PIDS $!"
"$WORK/bin/haserve" -snapshot "$WORK/shards/shard-00001.hasn" -addr 127.0.0.1:0 \
    -port-file "$WORK/s1.addr" &
PIDS="$PIDS $!"

for f in s0.addr s1.addr; do
    tries=0
    while [ ! -s "$WORK/$f" ]; do
        tries=$((tries + 1))
        [ "$tries" -gt 100 ] && { echo "smoke: $f never appeared" >&2; exit 1; }
        sleep 0.1
    done
done
ADDR0=$(cat "$WORK/s0.addr")
ADDR1=$(cat "$WORK/s1.addr")

echo "smoke: querying rows 0-49 through the router (h=3, top-5), diffing vs oracle"
"$WORK/bin/haquery" -shards "$ADDR0,$ADDR1" \
    -codes-file "$WORK/shards/codes.txt" -rows 0-49 -h 3 -topk 5 \
    -oracle "$WORK/shards" -trace

echo "smoke: same rows again: shard 0 sheds the search, then serves it from cache"
"$WORK/bin/haquery" -shards "$ADDR0,$ADDR1" \
    -codes-file "$WORK/shards/codes.txt" -rows 0-49 -h 3 -topk 5 \
    -oracle "$WORK/shards" -priority interactive

if [ "$SMOKE_DEBUG" = "1" ]; then
    DEBUG_ADDR=$(cat "$WORK/s0.debug")
    echo "smoke: fetching http://$DEBUG_ADDR/debug/obs"
    if command -v curl >/dev/null 2>&1; then
        curl -fsS "http://$DEBUG_ADDR/debug/obs" > "$WORK/obs.json"
    elif command -v wget >/dev/null 2>&1; then
        wget -qO "$WORK/obs.json" "http://$DEBUG_ADDR/debug/obs"
    else
        go run ./scripts/fetch "http://$DEBUG_ADDR/debug/obs" > "$WORK/obs.json"
    fi
    grep -q '"req.search_ns"' "$WORK/obs.json" || {
        echo "smoke: debug snapshot has no search-latency histogram" >&2; exit 1; }
    REQS=$(sed -n 's/^ *"requests": \([0-9]*\).*/\1/p' "$WORK/obs.json" | head -n 1)
    [ -n "$REQS" ] && [ "$REQS" -gt 0 ] || {
        echo "smoke: debug snapshot reports no served requests" >&2; exit 1; }
    FAULTS=$(sed -n 's/^ *"faults_injected": \([0-9]*\).*/\1/p' "$WORK/obs.json" | head -n 1)
    [ -n "$FAULTS" ] && [ "$FAULTS" -gt 0 ] || {
        echo "smoke: debug snapshot reports no injected faults" >&2; exit 1; }
    # haserve defaults to -engine auto, so every search must leave a planner
    # decision counter and a per-engine latency histogram behind.
    PLANNED=$(grep -o '"planner\.[a-z]*": [0-9]*' "$WORK/obs.json" \
        | awk -F': ' '{s+=$2} END{print s+0}')
    [ "$PLANNED" -gt 0 ] || {
        echo "smoke: debug snapshot has no planner strategy counters" >&2; exit 1; }
    ENGINE=$(awk '/"engine\./{f=1} f && /"count":/{gsub(/[^0-9]/,""); s+=$0; f=0} END{print s+0}' \
        "$WORK/obs.json")
    [ "$ENGINE" -gt 0 ] || {
        echo "smoke: debug snapshot has no per-engine latency samples" >&2; exit 1; }
    # The repeat pass must have left cache traffic (misses from the first
    # pass, hits from the second) and one shed behind.
    QHITS=$(sed -n 's/^ *"qcache.hits": \([0-9]*\).*/\1/p' "$WORK/obs.json" | head -n 1)
    [ -n "$QHITS" ] && [ "$QHITS" -gt 0 ] || {
        echo "smoke: debug snapshot reports no result-cache hits" >&2; exit 1; }
    QMISS=$(sed -n 's/^ *"qcache.misses": \([0-9]*\).*/\1/p' "$WORK/obs.json" | head -n 1)
    [ -n "$QMISS" ] && [ "$QMISS" -gt 0 ] || {
        echo "smoke: debug snapshot reports no result-cache misses" >&2; exit 1; }
    SHEDS=$(sed -n 's/^ *"sheds": \([0-9]*\).*/\1/p' "$WORK/obs.json" | head -n 1)
    [ -n "$SHEDS" ] && [ "$SHEDS" -gt 0 ] || {
        echo "smoke: debug snapshot reports no shed requests" >&2; exit 1; }
    # haidx shard writes v4 (mmap-native) snapshots and haserve defaults to
    # -mmap, so the served index must be page-cache-backed: the whole arena
    # in index.mapped_bytes, nothing on the heap. (On a platform without the
    # mmap fast path the eager fallback would flip these two gauges.)
    MAPPED=$(sed -n 's/^ *"index.mapped_bytes": \([0-9]*\).*/\1/p' "$WORK/obs.json" | head -n 1)
    HEAP=$(sed -n 's/^ *"index.heap_bytes": \([0-9]*\).*/\1/p' "$WORK/obs.json" | head -n 1)
    [ -n "$MAPPED" ] && [ -n "$HEAP" ] || {
        echo "smoke: debug snapshot is missing the index byte gauges" >&2; exit 1; }
    [ "$MAPPED" -gt 0 ] || {
        echo "smoke: served shard is not mmap-backed (index.mapped_bytes=$MAPPED)" >&2; exit 1; }
    [ "$HEAP" -eq 0 ] || {
        echo "smoke: mmap-backed shard still holds $HEAP heap bytes" >&2; exit 1; }
    echo "smoke: debug endpoint OK ($REQS requests, $FAULTS faults, $PLANNED planned, $ENGINE engine samples, $QHITS/$QMISS cache hits/misses, $SHEDS sheds, $MAPPED mapped bytes)"
fi

SMOKE_LSM=${SMOKE_LSM:-0}
if [ "$SMOKE_LSM" = "1" ]; then
    echo "smoke: starting two mutable (LSM) shard servers from the same snapshots"
    "$WORK/bin/haserve" -snapshot "$WORK/shards/shard-00000.hasn" -addr 127.0.0.1:0 \
        -port-file "$WORK/m0.addr" -mutable -memtable-max 64 &
    PIDS="$PIDS $!"
    "$WORK/bin/haserve" -snapshot "$WORK/shards/shard-00001.hasn" -addr 127.0.0.1:0 \
        -port-file "$WORK/m1.addr" -mutable -memtable-max 64 &
    PIDS="$PIDS $!"
    for f in m0.addr m1.addr; do
        tries=0
        while [ ! -s "$WORK/$f" ]; do
            tries=$((tries + 1))
            [ "$tries" -gt 100 ] && { echo "smoke: $f never appeared" >&2; exit 1; }
            sleep 0.1
        done
    done
    MADDR="$(cat "$WORK/m0.addr"),$(cat "$WORK/m1.addr")"

    echo "smoke: mutable tier must still match the oracle before any mutation"
    "$WORK/bin/haquery" -shards "$MADDR" \
        -codes-file "$WORK/shards/codes.txt" -rows 0-49 -h 3 -topk 5 \
        -oracle "$WORK/shards"

    # Two distinct codes from the dataset: the insert target and the upsert
    # destination (which may live in a different Gray partition).
    C0=$(sed -n '1p' "$WORK/shards/codes.txt")
    C1=$(grep -v -x "$C0" "$WORK/shards/codes.txt" | sed -n '1p')
    [ -n "$C1" ] || { echo "smoke: dataset has only one distinct code" >&2; exit 1; }

    echo "smoke: insert a fresh tuple, verify it is searchable"
    "$WORK/bin/haquery" -shards "$MADDR" -insert "90001:$C0"
    "$WORK/bin/haquery" -shards "$MADDR" -codes "$C0" -h 0 -v | grep -q 90001 || {
        echo "smoke: inserted tuple 90001 not found" >&2; exit 1; }

    echo "smoke: seal + compact, tuple must survive the frozen segments"
    "$WORK/bin/haquery" -shards "$MADDR" -seal-compact
    "$WORK/bin/haquery" -shards "$MADDR" -codes "$C0" -h 0 -v | grep -q 90001 || {
        echo "smoke: tuple 90001 lost across seal+compact" >&2; exit 1; }

    echo "smoke: upsert moves the tuple to a new code"
    "$WORK/bin/haquery" -shards "$MADDR" -insert "90001:$C1"
    "$WORK/bin/haquery" -shards "$MADDR" -codes "$C1" -h 0 -v | grep -q 90001 || {
        echo "smoke: upserted tuple 90001 not at its new code" >&2; exit 1; }
    if "$WORK/bin/haquery" -shards "$MADDR" -codes "$C0" -h 0 -v | grep -q 90001; then
        echo "smoke: upsert left a stale copy of tuple 90001 at the old code" >&2; exit 1
    fi

    echo "smoke: delete the tuple, verify it is gone"
    "$WORK/bin/haquery" -shards "$MADDR" -delete 90001
    if "$WORK/bin/haquery" -shards "$MADDR" -codes "$C1" -h 0 -v | grep -q 90001; then
        echo "smoke: deleted tuple 90001 still searchable" >&2; exit 1
    fi
    echo "smoke: LSM mutable tier OK"
fi

echo "smoke: OK"
